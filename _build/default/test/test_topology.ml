(* Topology generators: the paper's tree, tree+cycles and power-law
   overlays, plus graph diagnostics. *)

open Ri_util
open Ri_topology

let test_regular_tree_shape () =
  let g = Tree_gen.regular ~n:21 ~fanout:4 in
  Alcotest.(check int) "edges" 20 (Graph.edge_count g);
  Alcotest.(check bool) "is a tree" true (Metrics.is_tree g);
  (* Root has 4 children; internal nodes have at most fanout+1 links. *)
  Alcotest.(check int) "root degree" 4 (Graph.degree g 0);
  Graph.iter_nodes
    (fun v -> Alcotest.(check bool) "degree bound" true (Graph.degree g v <= 5))
    g

let test_regular_tree_depth () =
  (* A complete 4-ary tree on 1+4+16 = 21 nodes has eccentricity 2 from
     the root. *)
  let g = Tree_gen.regular ~n:21 ~fanout:4 in
  Alcotest.(check int) "depth" 2 (Metrics.eccentricity g 0)

let test_random_labels_same_shape () =
  let rng = Prng.create 1 in
  let g = Tree_gen.random_labels rng ~n:200 ~fanout:4 in
  Alcotest.(check bool) "tree" true (Metrics.is_tree g);
  Alcotest.(check int) "edges" 199 (Graph.edge_count g);
  let hist_regular = Metrics.degree_histogram (Tree_gen.regular ~n:200 ~fanout:4) in
  let hist_shuffled = Metrics.degree_histogram g in
  Alcotest.(check bool) "degree histogram preserved" true
    (hist_regular = hist_shuffled)

let test_random_attachment () =
  let rng = Prng.create 2 in
  let g = Tree_gen.random_attachment rng ~n:300 ~max_children:3 in
  Alcotest.(check bool) "tree" true (Metrics.is_tree g);
  (* max_children children plus one parent link. *)
  Graph.iter_nodes
    (fun v -> Alcotest.(check bool) "bounded degree" true (Graph.degree g v <= 4))
    g

let test_tree_gen_validation () =
  Alcotest.check_raises "n" (Invalid_argument "Tree_gen.regular: n must be positive")
    (fun () -> ignore (Tree_gen.regular ~n:0 ~fanout:2))

let test_cycle_gen_counts () =
  let rng = Prng.create 3 in
  let g = Cycle_gen.tree_with_cycles rng ~n:100 ~fanout:4 ~extra_links:10 in
  Alcotest.(check int) "edges" 109 (Graph.edge_count g);
  Alcotest.(check int) "cyclomatic" 10 (Metrics.cyclomatic_number g);
  Alcotest.(check bool) "still connected" true (Graph.is_connected g);
  Alcotest.(check bool) "not a tree" false (Metrics.is_tree g)

let test_cycle_gen_zero () =
  let rng = Prng.create 4 in
  let g = Cycle_gen.tree_with_cycles rng ~n:50 ~fanout:4 ~extra_links:0 in
  Alcotest.(check bool) "tree preserved" true (Metrics.is_tree g)

let test_cycle_gen_capacity () =
  let rng = Prng.create 5 in
  let base = Tree_gen.regular ~n:4 ~fanout:3 in
  (* K4 has 6 edges; the tree has 3, so at most 3 more fit. *)
  Alcotest.check_raises "overfull"
    (Invalid_argument "Cycle_gen.add_random_links: not enough absent pairs")
    (fun () -> ignore (Cycle_gen.add_random_links rng base ~extra:4));
  let full = Cycle_gen.add_random_links rng base ~extra:3 in
  Alcotest.(check int) "complete graph" 6 (Graph.edge_count full)

let test_power_law_connected () =
  let rng = Prng.create 6 in
  let g = Power_law.generate rng ~n:2000 ~exponent:(-2.2088) () in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check int) "node count" 2000 (Graph.n g)

let test_power_law_exponent_estimate () =
  let rng = Prng.create 7 in
  let g = Power_law.generate rng ~n:5000 ~exponent:(-2.2088) () in
  let est = Metrics.estimated_power_law_exponent g in
  Alcotest.(check bool) "clearly negative" true (est < -1.0);
  (* Heavy-tailed: some node far above the mean degree. *)
  Alcotest.(check bool) "has hubs" true
    (float_of_int (Metrics.max_degree g) > 4. *. Metrics.mean_degree g)

let test_power_law_max_degree_cap () =
  let rng = Prng.create 8 in
  let g = Power_law.generate rng ~n:500 ~exponent:(-2.2) ~max_degree:10 () in
  (* Component bridging can add a few links on top of the cap. *)
  Alcotest.(check bool) "capped" true (Metrics.max_degree g <= 20)

let test_power_law_no_bridging_megahub () =
  (* Regression: bridging the many small components must spread anchors
     over the giant component, not graft them onto one node. *)
  let rng = Prng.create 12 in
  let g = Power_law.generate rng ~n:3000 ~exponent:(-2.2088) () in
  let cap = int_of_float (3000. ** 0.45) in
  Alcotest.(check bool) "no artificial hub" true
    (Metrics.max_degree g <= cap + 10)

let test_power_law_validation () =
  let rng = Prng.create 9 in
  Alcotest.check_raises "positive exponent"
    (Invalid_argument "Power_law.generate: exponent must be negative")
    (fun () -> ignore (Power_law.generate rng ~n:10 ~exponent:2. ()))

let test_metrics_path_graph () =
  (* Path 0-1-2-3: exact average path length =
     (1+2+3 + 1+1+2 + 2+1+1 + 3+2+1) / 12 = 20/12. *)
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let rng = Prng.create 10 in
  Alcotest.(check (float 1e-9)) "average path length" (20. /. 12.)
    (Metrics.average_path_length ~samples:4 rng g);
  Alcotest.(check int) "eccentricity of end" 3 (Metrics.eccentricity g 0);
  Alcotest.(check int) "eccentricity of middle" 2 (Metrics.eccentricity g 1)

let test_power_law_shorter_paths_than_tree () =
  (* The Figure 17 explanation: power-law topologies have a lower
     average path length than trees of the same size. *)
  let rng = Prng.create 11 in
  let tree = Tree_gen.random_labels (Prng.split rng) ~n:3000 ~fanout:4 in
  let pl = Power_law.generate (Prng.split rng) ~n:3000 ~exponent:(-2.2088) () in
  let apl_tree = Metrics.average_path_length ~samples:16 (Prng.split rng) tree in
  let apl_pl = Metrics.average_path_length ~samples:16 (Prng.split rng) pl in
  Alcotest.(check bool) "power-law paths shorter" true (apl_pl < apl_tree)

let test_degree_histogram () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  Alcotest.(check (list (pair int int))) "star histogram" [ (1, 3); (3, 1) ]
    (Metrics.degree_histogram g);
  Alcotest.(check (float 1e-9)) "mean degree" 1.5 (Metrics.mean_degree g)

let suite =
  ( "topology",
    [
      Alcotest.test_case "regular tree shape" `Quick test_regular_tree_shape;
      Alcotest.test_case "regular tree depth" `Quick test_regular_tree_depth;
      Alcotest.test_case "random labels keep shape" `Quick test_random_labels_same_shape;
      Alcotest.test_case "random attachment" `Quick test_random_attachment;
      Alcotest.test_case "tree validation" `Quick test_tree_gen_validation;
      Alcotest.test_case "tree+cycles counts" `Quick test_cycle_gen_counts;
      Alcotest.test_case "tree+cycles zero" `Quick test_cycle_gen_zero;
      Alcotest.test_case "tree+cycles capacity" `Quick test_cycle_gen_capacity;
      Alcotest.test_case "power law connected" `Quick test_power_law_connected;
      Alcotest.test_case "power law exponent" `Quick test_power_law_exponent_estimate;
      Alcotest.test_case "power law degree cap" `Quick test_power_law_max_degree_cap;
      Alcotest.test_case "power law bridging" `Quick test_power_law_no_bridging_megahub;
      Alcotest.test_case "power law validation" `Quick test_power_law_validation;
      Alcotest.test_case "metrics on path graph" `Quick test_metrics_path_graph;
      Alcotest.test_case "power law short paths" `Slow test_power_law_shorter_paths_than_tree;
      Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
    ] )
