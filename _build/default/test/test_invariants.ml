(* Cross-module property tests: the invariants that make routing indices
   trustworthy, checked on randomly generated networks. *)

open Ri_util
open Ri_content
open Ri_core
open Ri_topology
open Ri_p2p

let make_tree_net ?min_update ?update_distance_floor ~seed ~n ~scheme () =
  let rng = Prng.create seed in
  let graph = Tree_gen.random_labels rng ~n ~fanout:3 in
  let docs = Array.init n (fun _ -> Prng.int rng 9) in
  let content =
    {
      Network.summary =
        (fun v -> Summary.of_counts ~total:docs.(v) ~by_topic:[| docs.(v) |]);
      count_matching = (fun v _ -> docs.(v));
    }
  in
  ( Network.create ~graph ~content ~scheme ?min_update ?update_distance_floor (),
    graph,
    docs )

(* On a tree, a converged CRI row for neighbor v at node u must count
   exactly the documents in v's side of the (u, v) edge cut. *)
let prop_cri_rows_are_exact_subtree_counts =
  QCheck.Test.make ~name:"converged CRI rows = exact edge-cut counts" ~count:25
    QCheck.(int_range 2 80)
    (fun n ->
      let net, graph, docs = make_tree_net ~seed:(n * 7 + 1) ~n ~scheme:Scheme.Cri_kind () in
      let ok = ref true in
      Graph.iter_nodes
        (fun u ->
          Array.iter
            (fun v ->
              (* Documents on v's side: BFS from v avoiding u. *)
              let seen = Array.make n false in
              seen.(u) <- true;
              seen.(v) <- true;
              let q = Queue.create () in
              Queue.add v q;
              let side = ref docs.(v) in
              while not (Queue.is_empty q) do
                let w = Queue.pop q in
                Array.iter
                  (fun x ->
                    if not seen.(x) then begin
                      seen.(x) <- true;
                      side := !side + docs.(x);
                      Queue.add x q
                    end)
                  (Graph.neighbors graph w)
              done;
              match Scheme.row (Network.ri net u) ~peer:v with
              | Some (Scheme.Vector s) ->
                  if Float.abs (s.Summary.total -. float_of_int !side) > 1e-6 then
                    ok := false
              | _ -> ok := false)
            (Graph.neighbors graph u))
        graph;
      !ok)

(* The sum of a node's rows plus its local summary covers the whole
   network exactly (tree, converged CRI). *)
let prop_cri_coverage_is_total =
  QCheck.Test.make ~name:"local + all rows = whole network (tree CRI)" ~count:25
    QCheck.(int_range 2 100)
    (fun n ->
      let net, graph, docs = make_tree_net ~seed:(n * 13 + 5) ~n ~scheme:Scheme.Cri_kind () in
      let total = float_of_int (Array.fold_left ( + ) 0 docs) in
      let ok = ref true in
      Graph.iter_nodes
        (fun u ->
          let covered =
            match Scheme.export (Network.ri net u) ~exclude:None with
            | Scheme.Vector s -> s.Summary.total
            | Scheme.Hop_vector _ -> nan
          in
          if Float.abs (covered -. total) > 1e-6 then ok := false)
        graph;
      !ok)

(* HRI and hybrid agree with CRI on the total number of reachable
   documents when the horizon is large enough to cover the tree. *)
let prop_schemes_agree_on_totals_within_horizon =
  QCheck.Test.make ~name:"HRI totals = CRI totals when horizon >= diameter"
    ~count:15
    QCheck.(int_range 2 40)
    (fun n ->
      let scheme = Scheme.Hri_kind { horizon = n; fanout = 4. } in
      let net_h, graph, _ = make_tree_net ~seed:(n * 3 + 2) ~n ~scheme () in
      let net_c, _, _ = make_tree_net ~seed:(n * 3 + 2) ~n ~scheme:Scheme.Cri_kind () in
      let ok = ref true in
      Graph.iter_nodes
        (fun u ->
          Array.iter
            (fun v ->
              let hri_total =
                match Scheme.row (Network.ri net_h u) ~peer:v with
                | Some p -> Scheme.payload_total p
                | None -> nan
              in
              let cri_total =
                match Scheme.row (Network.ri net_c u) ~peer:v with
                | Some p -> Scheme.payload_total p
                | None -> nan
              in
              if Float.abs (hri_total -. cri_total) > 1e-6 then ok := false)
            (Graph.neighbors graph u))
        graph;
      !ok)

(* An update wave leaves a tree network in exactly the state a fresh
   converged build of the new content would produce. *)
let prop_update_wave_reaches_fresh_build_state =
  QCheck.Test.make ~name:"incremental update = fresh rebuild (tree CRI)" ~count:15
    QCheck.(pair (int_range 2 50) (int_range 1 50))
    (fun (n, extra_docs) ->
      let rng = Prng.create (n + (extra_docs * 61)) in
      let graph = Tree_gen.random_labels rng ~n ~fanout:3 in
      let docs = Array.init n (fun _ -> Prng.int rng 9) in
      let origin = Prng.int rng n in
      let content arr =
        {
          Network.summary =
            (fun v -> Summary.of_counts ~total:arr.(v) ~by_topic:[| arr.(v) |]);
          count_matching = (fun v _ -> arr.(v));
        }
      in
      (* Incremental: build with old docs, then propagate the change
         with thresholds low enough that nothing is suppressed. *)
      let net =
        Network.create ~graph ~content:(content docs) ~scheme:Scheme.Cri_kind
          ~min_update:1e-12 ~update_distance_floor:1e-12 ()
      in
      let new_docs = Array.copy docs in
      new_docs.(origin) <- new_docs.(origin) + extra_docs;
      Update.local_change net ~origin
        ~summary:
          (Summary.of_counts ~total:new_docs.(origin)
             ~by_topic:[| new_docs.(origin) |])
        ~counters:(Message.create ());
      (* Fresh build with the new docs. *)
      let fresh =
        Network.create ~graph ~content:(content new_docs) ~scheme:Scheme.Cri_kind ()
      in
      let ok = ref true in
      Graph.iter_nodes
        (fun u ->
          Array.iter
            (fun v ->
              match
                ( Scheme.row (Network.ri net u) ~peer:v,
                  Scheme.row (Network.ri fresh u) ~peer:v )
              with
              | Some a, Some b ->
                  if Scheme.payload_distance a b > 1e-6 then ok := false
              | _ -> ok := false)
            (Graph.neighbors graph u))
        graph;
      !ok)

(* A sequential RI query can never report more results than the network
   holds, and never terminates unsatisfied while results remain. *)
let prop_query_soundness_and_completeness =
  QCheck.Test.make ~name:"query soundness + completeness (tree CRI)" ~count:40
    QCheck.(pair (int_range 2 60) (int_range 1 25))
    (fun (n, stop) ->
      let net, _, docs = make_tree_net ~seed:(n + (stop * 97)) ~n ~scheme:Scheme.Cri_kind () in
      let total = Array.fold_left ( + ) 0 docs in
      let o =
        Query.run net ~origin:(n / 2)
          ~query:(Workload.query ~topics:[ 0 ] ~stop)
          ~forwarding:Query.Ri_guided
      in
      o.Query.found <= total
      && (o.Query.satisfied || o.Query.found = total))

(* Churn round-trip: disconnecting a leaf and reconnecting it somewhere
   else conserves the network-wide document count as seen from any
   node. *)
let prop_churn_conserves_documents =
  QCheck.Test.make ~name:"churn conserves reachable documents" ~count:20
    QCheck.(int_range 4 50)
    (fun n ->
      (* Thresholds at zero: conservation is exact only when no update
         is suppressed (approximate indices legitimately drift within
         the minUpdate band otherwise). *)
      let net, graph, docs =
        make_tree_net ~min_update:1e-12 ~update_distance_floor:1e-12
          ~seed:(n * 31) ~n ~scheme:Scheme.Cri_kind ()
      in
      let total = float_of_int (Array.fold_left ( + ) 0 docs) in
      (* Pick a leaf to re-home. *)
      let leaf =
        let rec find v = if Graph.degree graph v = 1 then v else find (v + 1) in
        find 0
      in
      let counters = Message.create () in
      ignore (Churn.disconnect_node net leaf ~counters);
      let anchor = if leaf = 0 then 1 else 0 in
      Churn.connect net leaf anchor ~counters;
      let covered =
        match Scheme.export (Network.ri net anchor) ~exclude:None with
        | Scheme.Vector s -> s.Summary.total
        | Scheme.Hop_vector _ -> nan
      in
      Float.abs (covered -. total) < 1e-6)

(* Rooted construction: every row's total is bounded by the documents in
   the network (no overcount on trees). *)
let prop_rooted_rows_bounded_on_trees =
  QCheck.Test.make ~name:"rooted rows bounded by network total (trees)" ~count:25
    QCheck.(int_range 2 60)
    (fun n ->
      let rng = Prng.create (n * 5 + 3) in
      let graph = Tree_gen.random_labels rng ~n ~fanout:3 in
      let docs = Array.init n (fun _ -> Prng.int rng 9) in
      let content =
        {
          Network.summary =
            (fun v -> Summary.of_counts ~total:docs.(v) ~by_topic:[| docs.(v) |]);
          count_matching = (fun v _ -> docs.(v));
        }
      in
      let origin = Prng.int rng n in
      let net =
        Network.create ~graph ~content ~scheme:Scheme.Cri_kind
          ~mode:(Network.Rooted origin) ()
      in
      let total = float_of_int (Array.fold_left ( + ) 0 docs) in
      let ok = ref true in
      Graph.iter_nodes
        (fun u ->
          List.iter
            (fun p ->
              match Scheme.row (Network.ri net u) ~peer:p with
              | Some payload ->
                  if Scheme.payload_total payload > total +. 1e-6 then ok := false
              | None -> ())
            (Scheme.peers (Network.ri net u)))
        graph;
      !ok)

let suite =
  ( "invariants",
    [
      QCheck_alcotest.to_alcotest prop_cri_rows_are_exact_subtree_counts;
      QCheck_alcotest.to_alcotest prop_cri_coverage_is_total;
      QCheck_alcotest.to_alcotest prop_schemes_agree_on_totals_within_horizon;
      QCheck_alcotest.to_alcotest prop_update_wave_reaches_fresh_build_state;
      QCheck_alcotest.to_alcotest prop_query_soundness_and_completeness;
      QCheck_alcotest.to_alcotest prop_churn_conserves_documents;
      QCheck_alcotest.to_alcotest prop_rooted_rows_bounded_on_trees;
    ] )
