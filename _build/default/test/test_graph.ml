(* Graph representation and traversals. *)

open Ri_topology

(* The paper's Figure 2/3 overlay: A..J = 0..9.
   A-B, A-C, A-D, B-E, B-F, C-G, G-H, D-I, D-J. *)
let paper_edges =
  [ (0, 1); (0, 2); (0, 3); (1, 4); (1, 5); (2, 6); (6, 7); (3, 8); (3, 9) ]

let paper_graph () = Graph.of_edges ~n:10 paper_edges

let test_counts () =
  let g = paper_graph () in
  Alcotest.(check int) "nodes" 10 (Graph.n g);
  Alcotest.(check int) "edges" 9 (Graph.edge_count g)

let test_neighbors_sorted () =
  let g = Graph.of_edges ~n:4 [ (0, 3); (0, 1); (0, 2) ] in
  Alcotest.(check (array int)) "sorted" [| 1; 2; 3 |] (Graph.neighbors g 0);
  Alcotest.(check int) "degree" 3 (Graph.degree g 0);
  Alcotest.(check int) "leaf degree" 1 (Graph.degree g 2)

let test_has_edge () =
  let g = paper_graph () in
  Alcotest.(check bool) "present" true (Graph.has_edge g 0 3);
  Alcotest.(check bool) "symmetric" true (Graph.has_edge g 3 0);
  Alcotest.(check bool) "absent" false (Graph.has_edge g 4 9)

let test_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop")
    (fun () -> ignore (Graph.of_edges ~n:2 [ (1, 1) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.of_edges: duplicate edge") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (0, 1); (1, 0) ]))

let test_edges_listing () =
  let g = paper_graph () in
  let listed = Graph.edges g in
  Alcotest.(check int) "count" 9 (List.length listed);
  List.iter
    (fun (u, v) -> Alcotest.(check bool) "u < v" true (u < v))
    listed;
  let folded = Graph.fold_edges (fun _ _ acc -> acc + 1) g 0 in
  Alcotest.(check int) "fold count" 9 folded

let test_bfs_distances () =
  let g = paper_graph () in
  let d = Graph.bfs_distances g 0 in
  Alcotest.(check int) "self" 0 d.(0);
  Alcotest.(check int) "child" 1 d.(3);
  Alcotest.(check int) "grandchild" 2 d.(8);
  Alcotest.(check int) "H is 3 hops" 3 d.(7)

let test_bfs_unreachable () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  let d = Graph.bfs_distances g 0 in
  Alcotest.(check int) "unreachable" max_int d.(3);
  Alcotest.(check bool) "not connected" false (Graph.is_connected g);
  Alcotest.(check int) "three components" 3
    (List.length (Graph.component_representatives g))

let test_bfs_parents () =
  let g = paper_graph () in
  let p = Graph.bfs_parents g 0 in
  Alcotest.(check int) "root" 0 p.(0);
  Alcotest.(check int) "H's parent is G" 6 p.(7);
  Alcotest.(check int) "I's parent is D" 3 p.(8)

let test_connected () =
  Alcotest.(check bool) "paper graph" true (Graph.is_connected (paper_graph ()))

let test_spanning_tree () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let st = Graph.spanning_tree_edges g in
  Alcotest.(check int) "n-1 edges" 3 (List.length st)

let test_builder () =
  let b = Graph.Builder.create ~n:3 in
  Alcotest.(check bool) "add" true (Graph.Builder.add_edge b 0 1);
  Alcotest.(check bool) "duplicate rejected" false (Graph.Builder.add_edge b 1 0);
  Alcotest.(check bool) "self rejected" false (Graph.Builder.add_edge b 2 2);
  Alcotest.(check int) "edge count" 1 (Graph.Builder.edge_count b);
  Alcotest.(check int) "degree" 1 (Graph.Builder.degree b 0);
  let g = Graph.Builder.to_graph b in
  Alcotest.(check int) "graph edges" 1 (Graph.edge_count g);
  Alcotest.check_raises "range" (Invalid_argument "Graph.Builder: node id out of range")
    (fun () -> ignore (Graph.Builder.add_edge b 0 5))

let prop_bfs_distance_triangle =
  (* Distance from a BFS source to a node is at most 1 more than to any
     of the node's neighbors. *)
  QCheck.Test.make ~name:"bfs distances are 1-Lipschitz along edges" ~count:50
    QCheck.(int_range 2 60)
    (fun n ->
      let rng = Ri_util.Prng.create n in
      let g = Tree_gen.random_labels rng ~n ~fanout:3 in
      let d = Graph.bfs_distances g 0 in
      Graph.fold_edges
        (fun u v acc -> acc && abs (d.(u) - d.(v)) <= 1)
        g true)

let suite =
  ( "graph",
    [
      Alcotest.test_case "counts" `Quick test_counts;
      Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
      Alcotest.test_case "has_edge" `Quick test_has_edge;
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "edges listing" `Quick test_edges_listing;
      Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
      Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
      Alcotest.test_case "bfs parents" `Quick test_bfs_parents;
      Alcotest.test_case "connected" `Quick test_connected;
      Alcotest.test_case "spanning tree" `Quick test_spanning_tree;
      Alcotest.test_case "builder" `Quick test_builder;
      QCheck_alcotest.to_alcotest prop_bfs_distance_triangle;
    ] )
