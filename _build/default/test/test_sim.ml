(* Simulator plumbing: configuration, trials, the convergence runner. *)

open Ri_util
open Ri_sim

let small = Config.scaled Config.base ~num_nodes:300

let test_base_matches_figure12 () =
  let b = Config.base in
  Alcotest.(check int) "NumNodes" 60000 b.Config.num_nodes;
  Alcotest.(check int) "F" 4 b.Config.fanout;
  Alcotest.(check (float 1e-9)) "o" (-2.2088) b.Config.outdegree_exponent;
  Alcotest.(check int) "QR" 3125 b.Config.query_results;
  Alcotest.(check int) "StopCondition" 10 b.Config.stop_condition;
  Alcotest.(check int) "H" 5 b.Config.horizon;
  Alcotest.(check (float 1e-9)) "A" 4. b.Config.eri_decay;
  Alcotest.(check (float 1e-9)) "c" 0. b.Config.compression_ratio;
  Alcotest.(check (float 1e-9)) "minUpdate" 0.01 b.Config.min_update;
  Alcotest.(check int) "query bytes" 250 b.Config.bytes.Ri_p2p.Message.query_bytes;
  Alcotest.(check int) "update bytes" 1000 b.Config.bytes.Ri_p2p.Message.update_bytes

let test_scaled_keeps_result_fraction () =
  let c = Config.scaled Config.base ~num_nodes:10000 in
  Alcotest.(check int) "QR fraction of 10000" 521 c.Config.query_results;
  Alcotest.(check int) "base itself is 5.2%" 3125
    (Config.scaled Config.base ~num_nodes:60000).Config.query_results

let test_scaled_links () =
  Alcotest.(check int) "identity at 60k" 1000
    (Config.scaled_links Config.base ~paper_links:1000);
  let at6k = Config.scaled Config.base ~num_nodes:6000 in
  Alcotest.(check int) "tenth" 100 (Config.scaled_links at6k ~paper_links:1000);
  Alcotest.(check int) "never zero" 1 (Config.scaled_links at6k ~paper_links:1);
  Alcotest.(check int) "zero stays zero" 0 (Config.scaled_links at6k ~paper_links:0)

let test_validate () =
  let check_err cfg =
    match Config.validate cfg with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "expected a validation error"
  in
  Alcotest.(check bool) "base valid" true (Config.validate Config.base = Ok ());
  check_err { Config.base with Config.num_nodes = 1 };
  check_err { Config.base with Config.stop_condition = 0 };
  check_err { Config.base with Config.compression_ratio = 1.2 };
  check_err
    {
      Config.base with
      Config.search = Config.Ri Config.cri;
      topology = Config.Tree_with_cycles { extra_links = 5 };
      cycle_policy = Ri_p2p.Network.No_op;
    }

let test_names () =
  Alcotest.(check string) "no-ri" "No-RI" (Config.search_name Config.No_ri);
  Alcotest.(check string) "cri" "CRI" (Config.search_name (Config.Ri Config.cri));
  Alcotest.(check string) "flood" "Flooding"
    (Config.search_name (Config.Flooding { ttl = None }));
  Alcotest.(check string) "tree" "Tree" (Config.topology_name Config.Tree);
  Alcotest.(check string) "powerlaw" "Powerlaw"
    (Config.topology_name Config.Power_law_graph)

let test_trial_determinism () =
  let m1 = Trial.run_query small ~trial:3 in
  let m2 = Trial.run_query small ~trial:3 in
  Alcotest.(check int) "same trial, same messages" m1.Trial.messages m2.Trial.messages;
  let m3 = Trial.run_query small ~trial:4 in
  Alcotest.(check bool) "different trials usually differ" true
    (m3.Trial.messages <> m1.Trial.messages || m3.Trial.found <> m1.Trial.found
    || m3.Trial.nodes_visited <> m1.Trial.nodes_visited
    || true (* determinism is the real assertion; this is informative *))

let test_query_metrics_consistency () =
  let m = Trial.run_query small ~trial:0 in
  Alcotest.(check int) "messages = forwards + returns + results"
    (m.Trial.forwards + m.Trial.returns + m.Trial.results)
    m.Trial.messages;
  Alcotest.(check bool) "satisfied implies enough found" true
    ((not m.Trial.satisfied) || m.Trial.found >= small.Config.stop_condition);
  Alcotest.(check bool) "bytes priced" true (m.Trial.bytes > 0.)

let test_all_searches_satisfy_small_query () =
  List.iter
    (fun search ->
      let cfg = Config.with_search small search in
      let m = Trial.run_query cfg ~trial:1 in
      Alcotest.(check bool)
        (Config.search_name search ^ " satisfied")
        true m.Trial.satisfied)
    [
      Config.Ri Config.cri;
      Config.Ri (Config.hri small);
      Config.Ri (Config.eri small);
      Config.No_ri;
      Config.Flooding { ttl = None };
    ]

let test_flooding_finds_all_results () =
  let cfg = Config.with_search small (Config.Flooding { ttl = None }) in
  let m = Trial.run_query cfg ~trial:2 in
  Alcotest.(check int) "all results" small.Config.query_results m.Trial.found

let test_update_trial_no_ri () =
  let cfg = Config.with_search small Config.No_ri in
  let m = Trial.run_update cfg ~trial:0 in
  Alcotest.(check int) "no index, no update traffic" 0 m.Trial.update_messages

let test_invalid_config_raises () =
  Alcotest.(check bool) "build rejects invalid configs" true
    (try
       ignore (Trial.build { small with Config.stop_condition = 0 } ~trial:0);
       false
     with Invalid_argument _ -> true)

let test_runner_stops_on_convergence () =
  let calls = ref 0 in
  let spec = { Runner.min_trials = 3; max_trials = 50; target_rel_error = 0.1 } in
  let s =
    Runner.run spec (fun ~trial:_ ->
        incr calls;
        42.)
  in
  Alcotest.(check int) "stopped at min_trials" 3 !calls;
  Alcotest.(check (float 1e-9)) "mean" 42. s.Stats.mean

let test_runner_respects_max_trials () =
  let calls = ref 0 in
  let spec = { Runner.min_trials = 2; max_trials = 7; target_rel_error = 0.0001 } in
  let rng = Prng.create 1 in
  let (_ : Stats.summary) =
    Runner.run spec (fun ~trial:_ ->
        incr calls;
        Prng.float rng 1000.)
  in
  Alcotest.(check int) "capped" 7 !calls

let test_runner_validation () =
  Alcotest.check_raises "bad bounds" (Invalid_argument "Runner.run: bad trial bounds")
    (fun () ->
      ignore
        (Runner.run
           { Runner.min_trials = 5; max_trials = 2; target_rel_error = 0.1 }
           (fun ~trial:_ -> 0.)))

let suite =
  ( "sim",
    [
      Alcotest.test_case "base config = figure 12" `Quick test_base_matches_figure12;
      Alcotest.test_case "scaled keeps 5.2%" `Quick test_scaled_keeps_result_fraction;
      Alcotest.test_case "scaled links" `Quick test_scaled_links;
      Alcotest.test_case "validate" `Quick test_validate;
      Alcotest.test_case "names" `Quick test_names;
      Alcotest.test_case "trial determinism" `Quick test_trial_determinism;
      Alcotest.test_case "query metrics consistency" `Quick test_query_metrics_consistency;
      Alcotest.test_case "all searches satisfy" `Quick test_all_searches_satisfy_small_query;
      Alcotest.test_case "flooding finds all" `Quick test_flooding_finds_all_results;
      Alcotest.test_case "no-RI update trial" `Quick test_update_trial_no_ri;
      Alcotest.test_case "invalid config raises" `Quick test_invalid_config_raises;
      Alcotest.test_case "runner convergence" `Quick test_runner_stops_on_convergence;
      Alcotest.test_case "runner max trials" `Quick test_runner_respects_max_trials;
      Alcotest.test_case "runner validation" `Quick test_runner_validation;
    ] )
