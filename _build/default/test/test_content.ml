(* Content model: topics, documents, local indices, summaries. *)

open Ri_content

let topics4 = Topic.paper_example

let doc id topics = Document.make ~id ~topics ()

let test_topic_universe () =
  Alcotest.(check int) "count" 4 (Topic.count topics4);
  Alcotest.(check string) "name" "databases" (Topic.name topics4 0);
  Alcotest.(check (option int)) "find" (Some 2) (Topic.find topics4 "theory");
  Alcotest.(check (option int)) "find missing" None (Topic.find topics4 "cooking");
  Alcotest.(check (list int)) "all" [ 0; 1; 2; 3 ] (Topic.all topics4);
  Alcotest.check_raises "bad id" (Invalid_argument "Topic: id out of range")
    (fun () -> ignore (Topic.name topics4 4));
  Alcotest.check_raises "zero topics"
    (Invalid_argument "Topic.make: need a positive topic count") (fun () ->
      ignore (Topic.make 0))

let test_default_names () =
  let u = Topic.make 3 in
  Alcotest.(check string) "t0" "t0" (Topic.name u 0);
  Alcotest.(check string) "t2" "t2" (Topic.name u 2)

let test_document () =
  let d = Document.make ~id:1 ~topics:[ 3; 1; 3 ] () in
  Alcotest.(check (list int)) "sorted deduped" [ 1; 3 ] d.Document.topics;
  Alcotest.(check string) "default title" "doc1" d.Document.title;
  Alcotest.(check bool) "has topic" true (Document.has_topic d 3);
  Alcotest.(check bool) "lacks topic" false (Document.has_topic d 0);
  Alcotest.(check bool) "matches conjunction" true (Document.matches d [ 1; 3 ]);
  Alcotest.(check bool) "partial match fails" false (Document.matches d [ 1; 2 ]);
  Alcotest.(check bool) "empty query matches" true (Document.matches d []);
  Alcotest.check_raises "negative id"
    (Invalid_argument "Document.make: negative id") (fun () ->
      ignore (Document.make ~id:(-1) ~topics:[] ()))

let test_local_index_crud () =
  let idx = Local_index.create topics4 in
  Alcotest.(check int) "empty" 0 (Local_index.size idx);
  Local_index.add idx (doc 1 [ 0; 3 ]);
  Local_index.add idx (doc 2 [ 0 ]);
  Local_index.add idx (doc 3 [ 1 ]);
  Alcotest.(check int) "size" 3 (Local_index.size idx);
  Alcotest.(check bool) "mem" true (Local_index.mem idx 2);
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Local_index.add: duplicate document id") (fun () ->
      Local_index.add idx (doc 1 []));
  (match Local_index.remove idx 2 with
  | Some d -> Alcotest.(check int) "removed" 2 d.Document.id
  | None -> Alcotest.fail "expected removal");
  Alcotest.(check (option Alcotest.reject)) "gone" None
    (Option.map (fun _ -> ()) (Local_index.find idx 2));
  Alcotest.(check int) "size after remove" 2 (Local_index.size idx)

let test_local_index_search () =
  let idx = Local_index.create topics4 in
  Local_index.add idx (doc 1 [ 0; 3 ]);
  Local_index.add idx (doc 2 [ 0 ]);
  Local_index.add idx (doc 3 [ 0; 3 ]);
  let hits = Local_index.search idx [ 0; 3 ] in
  Alcotest.(check (list int)) "conjunction hits in id order" [ 1; 3 ]
    (List.map (fun d -> d.Document.id) hits);
  Alcotest.(check int) "count matching" 2 (Local_index.count_matching idx [ 0; 3 ]);
  Alcotest.(check int) "single topic" 3 (Local_index.count_matching idx [ 0 ])

let test_local_index_summary () =
  let idx = Local_index.create topics4 in
  Local_index.add idx (doc 1 [ 0; 3 ]);
  Local_index.add idx (doc 2 [ 0 ]);
  let s = Local_index.summary idx in
  Alcotest.(check (float 1e-9)) "total" 2. s.Summary.total;
  Alcotest.(check (float 1e-9)) "databases" 2. (Summary.get s 0);
  Alcotest.(check (float 1e-9)) "languages" 1. (Summary.get s 3);
  Alcotest.(check (float 1e-9)) "networks" 0. (Summary.get s 1);
  (* Summary stays consistent after removal. *)
  ignore (Local_index.remove idx 1);
  let s = Local_index.summary idx in
  Alcotest.(check (float 1e-9)) "total after remove" 1. s.Summary.total;
  Alcotest.(check (float 1e-9)) "languages after remove" 0. (Summary.get s 3)

let prop_summary_counts_match_documents =
  QCheck.Test.make ~name:"summary equals a recount of the documents"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 0 40) (int_range 0 15))
    (fun topic_seeds ->
      let u = Topic.make 4 in
      let idx = Local_index.create u in
      List.iteri
        (fun i seed ->
          Local_index.add idx
            (Document.make ~id:i ~topics:[ seed mod 4; seed / 4 mod 4 ] ()))
        topic_seeds;
      let s = Local_index.summary idx in
      let docs = Local_index.documents idx in
      s.Summary.total = float_of_int (List.length docs)
      && List.for_all
           (fun t ->
             Summary.get s t
             = float_of_int
                 (List.length (List.filter (fun d -> Document.has_topic d t) docs)))
           [ 0; 1; 2; 3 ])

let suite =
  ( "content",
    [
      Alcotest.test_case "topic universe" `Quick test_topic_universe;
      Alcotest.test_case "default names" `Quick test_default_names;
      Alcotest.test_case "document" `Quick test_document;
      Alcotest.test_case "local index crud" `Quick test_local_index_crud;
      Alcotest.test_case "local index search" `Quick test_local_index_search;
      Alcotest.test_case "local index summary" `Quick test_local_index_summary;
      QCheck_alcotest.to_alcotest prop_summary_counts_match_documents;
    ] )
