(* Experiment harness: registry wiring, report structure, and the
   paper's qualitative claims at miniature scale. *)

open Ri_sim
open Ri_experiments

let tiny = Config.scaled Config.base ~num_nodes:400

let spec = { Runner.min_trials = 3; max_trials = 4; target_rel_error = 0.5 }

let run id =
  match Registry.find id with
  | Some e -> e.Registry.run ~base:tiny ~spec
  | None -> Alcotest.fail ("unknown experiment " ^ id)

let test_registry_complete () =
  Alcotest.(check (list string)) "ids in paper order"
    [ "fig13"; "fig14"; "fig15"; "fig16"; "fig17"; "fig18"; "fig19"; "fig20"; "flood" ]
    Registry.ids;
  Alcotest.(check bool) "find works" true (Registry.find "fig13" <> None);
  Alcotest.(check bool) "unknown id" true (Registry.find "fig99" = None)

let test_report_structure () =
  let r =
    Report.make ~id:"x" ~title:"t" ~paper_claim:"c" ~header:[ "a"; "b" ]
      ~rows:[ [ Report.cell_text "row"; Report.cell_number 4. ] ]
  in
  Alcotest.(check (option (float 1e-9))) "value_at" (Some 4.)
    (Report.value_at r ~row:0 ~col:1);
  Alcotest.(check (option Alcotest.reject)) "text cell has no value" None
    (Option.map (fun _ -> ()) (Report.value_at r ~row:0 ~col:0));
  Alcotest.(check (option Alcotest.reject)) "out of range" None
    (Option.map (fun _ -> ()) (Report.value_at r ~row:7 ~col:0));
  let s = Report.to_string r in
  Alcotest.(check bool) "mentions claim" true
    (Astring.String.is_infix ~affix:"paper: c" s);
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Report.make: row width mismatch") (fun () ->
      ignore
        (Report.make ~id:"x" ~title:"t" ~paper_claim:"c" ~header:[ "a"; "b" ]
           ~rows:[ [ Report.cell_text "row" ] ]))

let value r ~row ~col =
  match Report.value_at r ~row ~col with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "no value at %d,%d" row col)

let test_fig13_shape () =
  (* RIs beat the No-RI baseline on both distributions. *)
  let r = run "fig13" in
  Alcotest.(check int) "4 rows" 4 (List.length r.Report.rows);
  List.iter
    (fun col ->
      let cri = value r ~row:0 ~col and no_ri = value r ~row:3 ~col in
      Alcotest.(check bool)
        (Printf.sprintf "CRI < No-RI (col %d)" col)
        true (cri < no_ri))
    [ 1; 2 ]

let test_fig14_shape () =
  (* Messages grow with the requested result count. *)
  let r = run "fig14" in
  let first = value r ~row:0 ~col:1 and last = value r ~row:5 ~col:1 in
  Alcotest.(check bool) "monotone growth end-to-end" true (last > first)

let test_fig18_shape () =
  (* CRI update cost dwarfs ERI's on the tree topology. *)
  let r = run "fig18" in
  let cri = value r ~row:0 ~col:1 and eri = value r ~row:2 ~col:1 in
  Alcotest.(check bool) "CRI >> ERI" true (cri > 4. *. eri)

let test_fig20_crossover_positive () =
  let r = run "fig20" in
  (* Last row carries the crossover estimate. *)
  let crossover = value r ~row:6 ~col:1 in
  Alcotest.(check bool) "positive crossover" true (crossover > 0.)

let test_flood_shape () =
  (* The two-orders-of-magnitude gap needs the full 60000-node scale;
     at miniature scale flooding must still clearly lose. *)
  let r = run "flood" in
  let ratio = value r ~row:1 ~col:2 in
  Alcotest.(check bool) "flooding costs more" true (ratio > 1.5)

let suite =
  ( "experiments",
    [
      Alcotest.test_case "registry complete" `Quick test_registry_complete;
      Alcotest.test_case "report structure" `Quick test_report_structure;
      Alcotest.test_case "fig13 shape" `Slow test_fig13_shape;
      Alcotest.test_case "fig14 shape" `Slow test_fig14_shape;
      Alcotest.test_case "fig18 shape" `Slow test_fig18_shape;
      Alcotest.test_case "fig20 crossover" `Slow test_fig20_crossover_positive;
      Alcotest.test_case "flood shape" `Slow test_flood_shape;
    ] )
