(* Statistics: Welford accumulator, Student-t confidence intervals, the
   paper's 95%/10% stopping rule. *)

open Ri_util

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float msg expected actual =
  Alcotest.(check (float 1e-6)) msg expected actual

let acc_of xs =
  let a = Stats.Acc.create () in
  List.iter (Stats.Acc.add a) xs;
  a

let test_empty () =
  let a = Stats.Acc.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Acc.mean a));
  check_float "variance" 0. (Stats.Acc.variance a);
  Alcotest.(check bool) "stderr inf" true (Stats.Acc.std_error a = infinity)

let test_known_values () =
  let a = acc_of [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  check_float "mean" 5. (Stats.Acc.mean a);
  (* Sample variance with n-1 denominator: 32/7. *)
  check_float "variance" (32. /. 7.) (Stats.Acc.variance a);
  check_float "min" 2. (Stats.Acc.min a);
  check_float "max" 9. (Stats.Acc.max a);
  Alcotest.(check int) "count" 8 (Stats.Acc.count a)

let test_welford_matches_naive () =
  let g = Prng.create 99 in
  let xs = List.init 500 (fun _ -> Prng.float g 100.) in
  let a = acc_of xs in
  let n = float_of_int (List.length xs) in
  let mean = List.fold_left ( +. ) 0. xs /. n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
  in
  Alcotest.(check bool) "mean" true (feq ~eps:1e-6 mean (Stats.Acc.mean a));
  Alcotest.(check bool) "variance" true (feq ~eps:1e-4 var (Stats.Acc.variance a))

let test_t_quantiles () =
  check_float "df=1" 12.706 (Stats.t_quantile_975 1);
  check_float "df=10" 2.228 (Stats.t_quantile_975 10);
  check_float "df=30" 2.042 (Stats.t_quantile_975 30);
  (* Large df approaches the normal quantile 1.96. *)
  Alcotest.(check bool) "df=1000 near z" true
    (Float.abs (Stats.t_quantile_975 1000 -. 1.962) < 0.01);
  Alcotest.(check bool) "monotone decreasing" true
    (Stats.t_quantile_975 5 > Stats.t_quantile_975 6)

let test_ci_halfwidth () =
  (* Two observations 0 and 2: mean 1, s = sqrt(2), se = 1,
     t_{0.975,1} = 12.706. *)
  let a = acc_of [ 0.; 2. ] in
  check_float "ci" 12.706 (Stats.ci_halfwidth a);
  Alcotest.(check bool) "single obs infinite" true
    (Stats.ci_halfwidth (acc_of [ 1. ]) = infinity)

let test_relative_error () =
  let a = acc_of [ 10.; 10.; 10.; 10. ] in
  check_float "zero variance" 0. (Stats.relative_error a);
  let b = acc_of [ 0.; 0.; 0. ] in
  check_float "all zeros" 0. (Stats.relative_error b)

let test_converged_rule () =
  (* Identical observations converge as soon as min_obs is reached. *)
  let a = acc_of [ 5.; 5.; 5.; 5.; 5. ] in
  Alcotest.(check bool) "tight converged" true (Stats.converged a);
  Alcotest.(check bool) "too few" false (Stats.converged (acc_of [ 5.; 5. ]));
  (* Wildly spread observations do not converge. *)
  let b = acc_of [ 1.; 100.; 3.; 80.; 2. ] in
  Alcotest.(check bool) "spread not converged" false (Stats.converged b);
  (* A looser target accepts moderate spread sooner. *)
  let c = acc_of [ 100.; 101.; 99.; 100.; 100.; 101.; 99. ] in
  Alcotest.(check bool) "tight data converges" true
    (Stats.converged ~target:0.1 c)

let test_summary () =
  let s = Stats.summarize (acc_of [ 1.; 2.; 3. ]) in
  check_float "mean" 2. s.Stats.mean;
  check_float "min" 1. s.Stats.min;
  check_float "max" 3. s.Stats.max;
  Alcotest.(check int) "n" 3 s.Stats.n;
  let str = Format.asprintf "%a" Stats.pp_summary s in
  Alcotest.(check bool) "pp mentions n" true
    (Astring.String.is_infix ~affix:"n=3" str)

let prop_mean_within_bounds =
  QCheck.Test.make ~name:"mean lies within [min, max]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let a = acc_of xs in
      Stats.Acc.mean a >= Stats.Acc.min a -. 1e-6
      && Stats.Acc.mean a <= Stats.Acc.max a +. 1e-6)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance is non-negative" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 50) (float_range (-1e6) 1e6))
    (fun xs -> Stats.Acc.variance (acc_of xs) >= 0.)

let suite =
  ( "stats",
    [
      Alcotest.test_case "empty accumulator" `Quick test_empty;
      Alcotest.test_case "known values" `Quick test_known_values;
      Alcotest.test_case "welford vs naive" `Quick test_welford_matches_naive;
      Alcotest.test_case "t quantiles" `Quick test_t_quantiles;
      Alcotest.test_case "ci halfwidth" `Quick test_ci_halfwidth;
      Alcotest.test_case "relative error" `Quick test_relative_error;
      Alcotest.test_case "converged rule" `Quick test_converged_rule;
      Alcotest.test_case "summary" `Quick test_summary;
      QCheck_alcotest.to_alcotest prop_mean_within_bounds;
      QCheck_alcotest.to_alcotest prop_variance_nonneg;
    ] )
