(* End-to-end reproductions of the paper's worked examples that span
   several modules — especially the Figure 11 cycle analysis. *)

open Ri_content
open Ri_core
open Ri_topology
open Ri_p2p

(* Figure 11's scenario: A(10 docs) - B(15) - C(20) in a line, horizon 5,
   regular-tree fanout 3; then C connects to A, closing a 3-cycle. *)
let docs = [| 10.; 15.; 20. |]

let line_net scheme =
  let graph = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let content =
    {
      Network.summary =
        (fun v -> Summary.make ~total:docs.(v) ~by_topic:[| docs.(v) |]);
      count_matching = (fun _ _ -> 0);
    }
  in
  (* Thresholds low enough that the creation waves run to quiescence,
     as in the paper's analysis. *)
  Network.create ~graph ~content ~scheme ~cycle_policy:Network.No_op
    ~min_update:1e-4 ~update_distance_floor:1e-4 ()

let hri_kind = Scheme.Hri_kind { horizon = 5; fanout = 3. }

let hop_row net v peer =
  match Scheme.row (Network.ri net v) ~peer with
  | Some (Scheme.Hop_vector r) -> Array.map (fun s -> s.Summary.total) r
  | _ -> Alcotest.fail "expected a hop vector"

let test_figure11_initial_state () =
  let net = line_net hri_kind in
  Alcotest.(check (array (float 1e-6))) "A's row for B"
    [| 15.; 20.; 0.; 0.; 0. |] (hop_row net 0 1)

let test_figure11_after_cycle () =
  (* "This new link causes a series of updates that result in the
     hop-count RI shown on the right side of Figure 11": A's row for B
     becomes 15 20 10 15 20 and its row for C becomes 20 15 10 20 15. *)
  let net = line_net hri_kind in
  Churn.connect net 2 0 ~counters:(Message.create ());
  Alcotest.(check (array (float 1e-6))) "A's row for B"
    [| 15.; 20.; 10.; 15.; 20. |] (hop_row net 0 1);
  Alcotest.(check (array (float 1e-6))) "A's row for C"
    [| 20.; 15.; 10.; 20.; 15. |] (hop_row net 0 2)

let test_figure11_goodness_error () =
  (* "the goodness of B, before the cycle was created, was 21.67
     (15 + 20/3).  After the cycle is created, the goodness increases to
     23.58 ... a relative error of only 9%." *)
  let net = line_net hri_kind in
  let before = Scheme.goodness (Network.ri net 0) ~peer:1 ~query:[ 0 ] in
  Alcotest.(check (float 0.01)) "before" 21.67 before;
  Churn.connect net 2 0 ~counters:(Message.create ());
  let after = Scheme.goodness (Network.ri net 0) ~peer:1 ~query:[ 0 ] in
  Alcotest.(check (float 0.01)) "after" 23.58 after;
  let rel_error = (after -. before) /. before in
  Alcotest.(check bool) "about 9%" true (Float.abs (rel_error -. 0.09) < 0.005)

let test_figure11_eri_variant () =
  (* Section 7's exponential-RI version of the same scenario: the
     returning updates decay until insignificant and the goodness of B
     settles near 23.64 (the paper's cutoff; the true fixed point is
     23.65). *)
  let net = line_net (Scheme.Eri_kind { fanout = 3. }) in
  let before = Scheme.goodness (Network.ri net 0) ~peer:1 ~query:[ 0 ] in
  Alcotest.(check (float 0.01)) "before" 21.67 before;
  Churn.connect net 2 0 ~counters:(Message.create ());
  let after = Scheme.goodness (Network.ri net 0) ~peer:1 ~query:[ 0 ] in
  Alcotest.(check bool) "settles near 23.6" true
    (after > 23.5 && after < 23.8)

let test_figure11_update_cost_is_bounded () =
  (* "the cycle increases the cost of creating/updating the hop-count RI
     as updates sent by a node return to it ... the cycle is broken when
     the update reaches the horizon." *)
  let net = line_net hri_kind in
  let counters = Message.create () in
  Churn.connect net 2 0 ~counters;
  Alcotest.(check bool) "finite, non-trivial traffic" true
    (counters.Message.update_messages > 4
    && counters.Message.update_messages < 200)

let suite =
  ( "paper_examples",
    [
      Alcotest.test_case "figure 11 initial state" `Quick test_figure11_initial_state;
      Alcotest.test_case "figure 11 after the cycle" `Quick test_figure11_after_cycle;
      Alcotest.test_case "figure 11 goodness error (9%)" `Quick test_figure11_goodness_error;
      Alcotest.test_case "figure 11, exponential variant" `Quick test_figure11_eri_variant;
      Alcotest.test_case "figure 11 update cost bounded" `Quick
        test_figure11_update_cost_is_bounded;
    ] )
