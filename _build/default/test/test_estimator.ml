(* The goodness estimator, validated against the paper's worked
   examples. *)

open Ri_content
open Ri_core

(* Figure 3's compound RI at node A. *)
let row_b = Summary.of_counts ~total:100 ~by_topic:[| 20; 0; 10; 30 |]
let row_c = Summary.of_counts ~total:1000 ~by_topic:[| 0; 300; 0; 50 |]
let row_d = Summary.of_counts ~total:200 ~by_topic:[| 100; 0; 100; 150 |]

let db_and_lang = [ 0; 3 ]

let test_paper_example () =
  (* "the goodness of path B will be 6, of path C will be 0, and of path
     D will be 75" (Section 4). *)
  Alcotest.(check (float 1e-9)) "B" 6. (Estimator.goodness row_b db_and_lang);
  Alcotest.(check (float 1e-9)) "C" 0. (Estimator.goodness row_c db_and_lang);
  Alcotest.(check (float 1e-9)) "D" 75. (Estimator.goodness row_d db_and_lang)

let test_single_topic_is_count () =
  Alcotest.(check (float 1e-9)) "single topic reads the count" 300.
    (Estimator.goodness row_c [ 1 ])

let test_empty_query_is_total () =
  Alcotest.(check (float 1e-9)) "empty query estimates everything" 1000.
    (Estimator.goodness row_c [])

let test_empty_collection () =
  Alcotest.(check (float 1e-9)) "no documents, no results" 0.
    (Estimator.goodness (Summary.zero ~topics:4) [ 0 ])

let test_repeated_topic_squares_selectivity () =
  (* Independence assumption: asking for the same topic twice squares
     its selectivity — 100 * 0.2 * 0.2 = 4 for B and "databases". *)
  Alcotest.(check (float 1e-9)) "squared" 4. (Estimator.goodness row_b [ 0; 0 ])

let test_overcount_can_exceed_total () =
  (* An overcounting summary may claim more topic documents than its
     total; the estimate is a hint, not a bound. *)
  let s = Summary.make ~total:10. ~by_topic:[| 30. |] in
  Alcotest.(check (float 1e-9)) "exceeds total" 30. (Estimator.goodness s [ 0 ])

let test_out_of_range () =
  Alcotest.check_raises "bad topic" (Invalid_argument "Summary.get: topic out of range")
    (fun () -> ignore (Estimator.goodness row_b [ 9 ]))

let test_documents_per_message () =
  Alcotest.(check (float 1e-9)) "ratio" 3.
    (Estimator.documents_per_message ~goodness:9. ~messages:3.);
  Alcotest.(check (float 1e-9)) "zero messages" 0.
    (Estimator.documents_per_message ~goodness:9. ~messages:0.)

let summary_gen =
  QCheck.make
    ~print:(fun s -> Format.asprintf "%a" Summary.pp s)
    QCheck.Gen.(
      let* total = float_range 1. 1000. in
      let* counts = array_size (return 4) (float_range 0. 1000.) in
      return (Summary.make ~total ~by_topic:counts))

let prop_goodness_nonnegative =
  QCheck.Test.make ~name:"goodness is non-negative" ~count:200 summary_gen
    (fun s -> Estimator.goodness s [ 0; 2 ] >= 0.)

let prop_goodness_monotone_in_counts =
  QCheck.Test.make ~name:"raising a queried count raises goodness" ~count:200
    summary_gen (fun s ->
      let bigger =
        Summary.make ~total:s.Summary.total
          ~by_topic:
            (Array.mapi
               (fun i x -> if i = 0 then x +. 10. else x)
               s.Summary.by_topic)
      in
      Estimator.goodness bigger [ 0 ] > Estimator.goodness s [ 0 ] -. 1e-9)

let prop_conjunction_never_beats_single =
  QCheck.Test.make
    ~name:"adding a conjunct cannot raise the estimate (selectivity <= 1)"
    ~count:200 summary_gen (fun s ->
      (* Only holds when counts do not exceed the total. *)
      QCheck.assume (Array.for_all (fun x -> x <= s.Summary.total) s.Summary.by_topic);
      Estimator.goodness s [ 0; 1 ] <= Estimator.goodness s [ 0 ] +. 1e-9)

let suite =
  ( "estimator",
    [
      Alcotest.test_case "paper example (6, 0, 75)" `Quick test_paper_example;
      Alcotest.test_case "single topic" `Quick test_single_topic_is_count;
      Alcotest.test_case "empty query" `Quick test_empty_query_is_total;
      Alcotest.test_case "empty collection" `Quick test_empty_collection;
      Alcotest.test_case "repeated topic" `Quick test_repeated_topic_squares_selectivity;
      Alcotest.test_case "overcounts allowed" `Quick test_overcount_can_exceed_total;
      Alcotest.test_case "out of range" `Quick test_out_of_range;
      Alcotest.test_case "documents per message" `Quick test_documents_per_message;
      QCheck_alcotest.to_alcotest prop_goodness_nonnegative;
      QCheck_alcotest.to_alcotest prop_goodness_monotone_in_counts;
      QCheck_alcotest.to_alcotest prop_conjunction_never_beats_single;
    ] )
