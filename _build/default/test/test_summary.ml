(* Summary vectors: the rows of every routing index. *)

open Ri_content

let s total by_topic = Summary.make ~total ~by_topic

let test_construction () =
  let a = Summary.of_counts ~total:10 ~by_topic:[| 2; 3 |] in
  Alcotest.(check (float 1e-9)) "total" 10. a.Summary.total;
  Alcotest.(check int) "topics" 2 (Summary.topics a);
  Alcotest.check_raises "negative" (Invalid_argument "Summary.make: negative count")
    (fun () -> ignore (s (-1.) [| 0. |]))

let test_zero () =
  let z = Summary.zero ~topics:3 in
  Alcotest.(check bool) "is_zero" true (Summary.is_zero z);
  Alcotest.(check bool) "nonzero" false
    (Summary.is_zero (s 1. [| 0.; 0.; 0. |]))

let test_add_sub () =
  let a = s 10. [| 2.; 3. |] and b = s 4. [| 1.; 5. |] in
  let sum = Summary.add a b in
  Alcotest.(check (float 1e-9)) "total" 14. sum.Summary.total;
  Alcotest.(check (float 1e-9)) "t1" 8. (Summary.get sum 1);
  (* Subtraction clamps at zero instead of going negative. *)
  let diff = Summary.sub a b in
  Alcotest.(check (float 1e-9)) "clamped" 0. (Summary.get diff 1);
  Alcotest.(check (float 1e-9)) "normal" 1. (Summary.get diff 0);
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Summary.add: topic width mismatch") (fun () ->
      ignore (Summary.add a (Summary.zero ~topics:3)))

let test_scale_and_sum () =
  let a = s 10. [| 2.; 4. |] in
  let half = Summary.scale a 0.5 in
  Alcotest.(check (float 1e-9)) "total" 5. half.Summary.total;
  Alcotest.(check (float 1e-9)) "t1" 2. (Summary.get half 1);
  Alcotest.check_raises "negative factor"
    (Invalid_argument "Summary.scale: negative factor") (fun () ->
      ignore (Summary.scale a (-1.)));
  let total = Summary.sum [ a; a; a ] ~topics:2 in
  Alcotest.(check (float 1e-9)) "sum" 30. total.Summary.total

let test_selectivity () =
  let a = s 100. [| 20.; 0. |] in
  Alcotest.(check (float 1e-9)) "selectivity" 0.2 (Summary.selectivity a 0);
  Alcotest.(check (float 1e-9)) "empty collection" 0.
    (Summary.selectivity (Summary.zero ~topics:2) 0)

let test_diffs () =
  let a = s 100. [| 50. |] and b = s 101. [| 50.5 |] in
  Alcotest.(check (float 1e-9)) "rel diff" 0.01 (Summary.max_rel_diff a b);
  Alcotest.(check (float 1e-6)) "euclid" (sqrt 1.25)
    (Summary.euclidean_distance a b);
  Alcotest.(check bool) "approx" true (Summary.approx_equal a a)

let summary_gen =
  QCheck.make
    ~print:(fun s -> Format.asprintf "%a" Summary.pp s)
    QCheck.Gen.(
      let* width = int_range 1 8 in
      let* total = float_range 0. 1000. in
      let* counts = array_size (return width) (float_range 0. 1000.) in
      return (Summary.make ~total ~by_topic:counts))

let prop_add_commutes =
  QCheck.Test.make ~name:"add commutes" ~count:200
    QCheck.(pair summary_gen summary_gen)
    (fun (a, b) ->
      QCheck.assume (Summary.topics a = Summary.topics b);
      Summary.approx_equal ~eps:1e-6 (Summary.add a b) (Summary.add b a))

let prop_sub_of_add_restores =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:200
    QCheck.(pair summary_gen summary_gen)
    (fun (a, b) ->
      QCheck.assume (Summary.topics a = Summary.topics b);
      Summary.approx_equal ~eps:1e-5 (Summary.sub (Summary.add a b) b) a)

let prop_counts_never_negative =
  QCheck.Test.make ~name:"sub never yields negative counts" ~count:200
    QCheck.(pair summary_gen summary_gen)
    (fun (a, b) ->
      QCheck.assume (Summary.topics a = Summary.topics b);
      let d = Summary.sub a b in
      d.Summary.total >= 0.
      && Array.for_all (fun x -> x >= 0.) d.Summary.by_topic)

let suite =
  ( "summary",
    [
      Alcotest.test_case "construction" `Quick test_construction;
      Alcotest.test_case "zero" `Quick test_zero;
      Alcotest.test_case "add/sub" `Quick test_add_sub;
      Alcotest.test_case "scale/sum" `Quick test_scale_and_sum;
      Alcotest.test_case "selectivity" `Quick test_selectivity;
      Alcotest.test_case "diffs" `Quick test_diffs;
      QCheck_alcotest.to_alcotest prop_add_commutes;
      QCheck_alcotest.to_alcotest prop_sub_of_add_restores;
      QCheck_alcotest.to_alcotest prop_counts_never_negative;
    ] )
