(* Deterministic PRNG behaviour: reproducibility, ranges, rough
   distributional sanity. *)

open Ri_util

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Prng.bits64 a = Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 7 and b = Prng.create 8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  check_int "different seeds diverge" 0 !same

let test_copy_independent () =
  let a = Prng.create 3 in
  let b = Prng.copy a in
  let xa = Prng.bits64 a in
  let xb = Prng.bits64 b in
  check_bool "copy starts from same state" true (xa = xb);
  ignore (Prng.bits64 a);
  let ya = Prng.bits64 a and yb = Prng.bits64 b in
  check_bool "streams then diverge" true (ya <> yb)

let test_split_changes_parent () =
  let a = Prng.create 3 in
  let reference = Prng.copy a in
  let _child = Prng.split a in
  check_bool "split advances the parent" true
    (Prng.bits64 a <> Prng.bits64 reference)

let test_int_bounds () =
  let g = Prng.create 11 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_int_covers_small_range () =
  let g = Prng.create 5 in
  let seen = Array.make 4 false in
  for _ = 1 to 1000 do
    seen.(Prng.int g 4) <- true
  done;
  check_bool "all values hit" true (Array.for_all Fun.id seen)

let test_int_invalid () =
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int (Prng.create 1) 0))

let test_int_in () =
  let g = Prng.create 2 in
  for _ = 1 to 1000 do
    let v = Prng.int_in g (-3) 3 in
    check_bool "inclusive range" true (v >= -3 && v <= 3)
  done;
  check_int "degenerate range" 5 (Prng.int_in g 5 5);
  Alcotest.check_raises "empty range" (Invalid_argument "Prng.int_in: empty range")
    (fun () -> ignore (Prng.int_in g 2 1))

let test_unit_float_range () =
  let g = Prng.create 13 in
  for _ = 1 to 10_000 do
    let v = Prng.unit_float g in
    check_bool "[0,1)" true (v >= 0. && v < 1.)
  done

let test_unit_float_mean () =
  let g = Prng.create 17 in
  let acc = ref 0. in
  let n = 20_000 in
  for _ = 1 to n do
    acc := !acc +. Prng.unit_float g
  done;
  let mean = !acc /. float_of_int n in
  check_bool "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_bernoulli () =
  let g = Prng.create 23 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli g 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  check_bool "p near 0.3" true (Float.abs (p -. 0.3) < 0.02)

let test_gaussian_moments () =
  let g = Prng.create 29 in
  let n = 50_000 in
  let acc = Stats.Acc.create () in
  for _ = 1 to n do
    Stats.Acc.add acc (Prng.gaussian g ~mean:2. ~stddev:3.)
  done;
  check_bool "mean near 2" true (Float.abs (Stats.Acc.mean acc -. 2.) < 0.1);
  check_bool "stddev near 3" true (Float.abs (Stats.Acc.stddev acc -. 3.) < 0.1)

let test_shuffle_is_permutation () =
  let g = Prng.create 31 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle_in_place g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check_bool "same multiset" true (sorted = Array.init 100 Fun.id);
  check_bool "actually shuffled" true (a <> Array.init 100 Fun.id)

let test_pick () =
  let g = Prng.create 37 in
  for _ = 1 to 100 do
    let v = Prng.pick g [| 4; 8; 15 |] in
    check_bool "member" true (List.mem v [ 4; 8; 15 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick g [||]))

let suite =
  ( "prng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "copy independence" `Quick test_copy_independent;
      Alcotest.test_case "split advances parent" `Quick test_split_changes_parent;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "int covers range" `Quick test_int_covers_small_range;
      Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
      Alcotest.test_case "int_in" `Quick test_int_in;
      Alcotest.test_case "unit_float range" `Quick test_unit_float_range;
      Alcotest.test_case "unit_float mean" `Quick test_unit_float_mean;
      Alcotest.test_case "bernoulli rate" `Quick test_bernoulli;
      Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
      Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
      Alcotest.test_case "pick" `Quick test_pick;
    ] )
