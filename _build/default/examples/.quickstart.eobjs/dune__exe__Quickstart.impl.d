examples/quickstart.ml: Array Document Format Graph List Local_index Message Network Printf Query Ri_content Ri_core Ri_p2p Ri_topology Scheme Summary Topic Workload
