examples/library_network.ml: Array Compression Document Format List Local_index Network Printf Prng Query Ri_content Ri_core Ri_p2p Ri_topology Ri_util Scheme Topic Tree_gen Workload
