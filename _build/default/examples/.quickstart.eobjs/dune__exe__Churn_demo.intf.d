examples/churn_demo.mli:
