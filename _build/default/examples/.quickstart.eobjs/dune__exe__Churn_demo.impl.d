examples/churn_demo.ml: Array Churn Document List Local_index Message Network Printf Prng Query Ri_content Ri_core Ri_p2p Ri_topology Ri_util Scheme Topic Tree_gen Update Workload
