examples/quickstart.mli:
