examples/file_sharing.ml: Config List Printf Ri_sim Ri_util Runner Stats Trial
