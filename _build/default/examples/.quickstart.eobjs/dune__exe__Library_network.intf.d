examples/library_network.mli:
