examples/file_sharing.mli:
