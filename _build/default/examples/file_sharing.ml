(* A Gnutella-style file-sharing network.

   The scenario the paper's introduction motivates: thousands of peers on
   a power-law overlay share music files; content is heavily skewed (a
   few peers host most of the popular files, the 80/20 distribution);
   users ask for the first 10 hits.  We compare what each search
   mechanism pays per query, and what keeping the indices fresh costs.

   Run with: dune exec examples/file_sharing.exe *)

open Ri_util
open Ri_sim

let nodes = 4000

let base =
  let b = Config.scaled Config.base ~num_nodes:nodes in
  { b with Config.topology = Config.Power_law_graph }

let spec = { Runner.min_trials = 5; max_trials = 12; target_rel_error = 0.15 }

let mechanisms =
  [
    ("ERI (exponential routing index)", Config.Ri (Config.eri base));
    ("HRI (hop-count routing index)", Config.Ri (Config.hri base));
    ("CRI (compound routing index)", Config.Ri Config.cri);
    ("No index, random forwarding", Config.No_ri);
    ("Gnutella flooding, TTL 7", Config.Flooding { ttl = Some 7 });
  ]

let () =
  Printf.printf
    "== File sharing: %d peers, power-law overlay, 80/20 content skew ==\n\n"
    nodes;
  Printf.printf "%-34s %14s %12s\n" "mechanism" "msgs/query" "hit rate";
  List.iter
    (fun (label, search) ->
      let cfg = Config.with_search base search in
      let messages = Stats.Acc.create () in
      let satisfied = ref 0 in
      let trials = 10 in
      for trial = 0 to trials - 1 do
        let m = Trial.run_query cfg ~trial in
        Stats.Acc.add messages (float_of_int m.Trial.messages);
        if m.Trial.satisfied then incr satisfied
      done;
      Printf.printf "%-34s %14.1f %11d%%\n" label (Stats.Acc.mean messages)
        (100 * !satisfied / trials))
    mechanisms;
  ignore spec

let () =
  Printf.printf "\nIndex maintenance (one batch of updates, propagated):\n";
  Printf.printf "%-34s %14s\n" "routing index" "msgs/update";
  List.iter
    (fun (label, search) ->
      let cfg = Config.with_search base search in
      let acc = Stats.Acc.create () in
      for trial = 0 to 4 do
        let u = Trial.run_update cfg ~trial in
        Stats.Acc.add acc (float_of_int u.Trial.update_messages)
      done;
      Printf.printf "%-34s %14.1f\n" label (Stats.Acc.mean acc))
    [
      ("ERI", Config.Ri (Config.eri base));
      ("HRI", Config.Ri (Config.hri base));
      ("CRI", Config.Ri Config.cri);
    ];
  Printf.printf
    "\nThe compound index gives the sharpest routing but pays for it on\n\
     every update; the exponential index keeps queries cheap at a tiny\n\
     maintenance bill - the paper's headline trade-off.\n"
