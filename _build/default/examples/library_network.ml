(* A federation of digital libraries with a coarse, compressed index.

   Sixty collections exchange documents over a tree-shaped federation.
   Each library categorises its holdings under a 30-topic taxonomy, but
   to keep routing indices small the federation hashes topics into a
   handful of buckets — the paper's "approximate indices".  We watch the
   same conjunctive query degrade gracefully as the index shrinks, and
   show a real overcount produced by bucket consolidation.

   Run with: dune exec examples/library_network.exe *)

open Ri_content
open Ri_core
open Ri_topology
open Ri_p2p
open Ri_util

let universe = Topic.make 30

let nodes = 60

let rng = Prng.create 2024

(* Every library holds 40 documents on two random topics each; library
   17 additionally holds the twelve "topic 4 AND topic 9" treatises the
   query is after. *)
let indices =
  Array.init nodes (fun v ->
      let idx = Local_index.create universe in
      for d = 0 to 39 do
        let t1 = Prng.int rng 30 and t2 = Prng.int rng 30 in
        Local_index.add idx
          (Document.make ~id:((v * 100) + d) ~topics:[ t1; t2 ] ())
      done;
      if v = 17 then
        for d = 40 to 51 do
          Local_index.add idx
            (Document.make ~id:((v * 100) + d) ~topics:[ 4; 9 ] ())
        done;
      idx)

let graph = Tree_gen.random_labels (Prng.create 7) ~n:nodes ~fanout:3

let query = Workload.query ~topics:[ 4; 9 ] ~stop:12

let run_at ratio =
  let compression =
    Compression.of_ratio ~topics:30 ~ratio ~mode:Compression.Overcount
  in
  let network =
    Network.create ~graph
      ~content:(Network.content_of_local_indices indices)
      ~scheme:Scheme.Cri_kind ~compression ()
  in
  let outcome = Query.run network ~origin:0 ~query ~forwarding:Query.Ri_guided in
  (network, outcome)

let () =
  Printf.printf "== Digital-library federation: %d collections, 30-topic taxonomy ==\n"
    nodes;
  Printf.printf "\nQuery: %s  (all 12 answers live at library 17)\n\n"
    (Format.asprintf "%a" (Workload.pp universe) query);
  Printf.printf "%-22s %12s %10s %10s\n" "index compression" "msgs/query"
    "found" "satisfied";
  List.iter
    (fun ratio ->
      let _, o = run_at ratio in
      Printf.printf "%-22s %12d %10d %10b\n"
        (Printf.sprintf "%.0f%% (%d buckets)" (100. *. ratio)
           (Compression.width ~topics:30
              (Compression.of_ratio ~topics:30 ~ratio ~mode:Compression.Overcount)))
        (Query.messages o) o.Query.found o.Query.satisfied)
    [ 0.0; 0.5; 0.67; 0.8 ]

let () =
  (* Demonstrate the overcount itself: what node 0's index claims about
     the query under heavy compression vs. the truth. *)
  let network, _ = run_at 0.8 in
  let ri = Network.ri network 0 in
  let claimed =
    List.fold_left
      (fun acc (_, g) -> acc +. g)
      0.
      (Scheme.rank ri
         ~query:(Network.project_query network query.Workload.topics)
         ~exclude:[])
  in
  let truth =
    Array.to_list indices
    |> List.map (fun idx -> Local_index.count_matching idx query.Workload.topics)
    |> List.fold_left ( + ) 0
  in
  Printf.printf
    "\nAt 80%% compression node 0's index estimates %.0f matching documents\n\
     reachable through its neighbors; the network holds %d.  Consolidated\n\
     buckets only ever overcount, so the query still routes - it just\n\
     wastes a few forwards on paths that looked better than they were.\n"
    claimed truth
