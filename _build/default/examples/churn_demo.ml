(* Peers coming and going: routing indices under churn.

   "A P2P system is formed by a large number of nodes that can join or
   leave the system at any time" (Section 3).  This example walks a
   small exponential-RI network through a join, a batch of document
   additions, and an unannounced departure — printing the index traffic
   each event generates and proving queries stay correct throughout.

   Run with: dune exec examples/churn_demo.exe *)

open Ri_content
open Ri_core
open Ri_topology
open Ri_p2p
open Ri_util

let universe = Topic.of_names [ "music"; "video"; "papers"; "code" ]

let nodes = 64

let rng = Prng.create 99

(* Everyone shares a handful of files; peer 40 is the big "papers"
   archive this demo tracks. *)
let indices =
  Array.init nodes (fun v ->
      let idx = Local_index.create universe in
      let count = if v = 40 then 30 else 2 + Prng.int rng 4 in
      for d = 0 to count - 1 do
        let topic = if v = 40 then 2 else Prng.int rng 4 in
        Local_index.add idx (Document.make ~id:((v * 1000) + d) ~topics:[ topic ] ())
      done;
      idx)

let graph = Tree_gen.random_labels (Prng.create 5) ~n:nodes ~fanout:3

let network =
  Network.create ~graph
    ~content:(Network.content_of_local_indices indices)
    ~scheme:(Scheme.Eri_kind { fanout = 3. })
    ~min_update:0.01 ~update_distance_floor:0.5 ()

let papers_query = Workload.query ~topics:[ 2 ] ~stop:25

let probe label =
  let o = Query.run network ~origin:0 ~query:papers_query ~forwarding:Query.Ri_guided in
  Printf.printf "  query after %-28s found %2d papers in %3d messages (satisfied: %b)\n"
    label o.Query.found (Query.messages o) o.Query.satisfied

let () =
  Printf.printf "== Churn demo: %d peers, exponential routing indices ==\n\n" nodes;
  probe "initial convergence:"

(* Event 1: the archive peer is re-homed — it leaves without notice and
   rejoins elsewhere. *)
let () =
  let counters = Message.create () in
  let former = Churn.disconnect_node network 40 ~counters in
  let reattach = 7 in
  Printf.printf
    "\npeer 40 (the archive) vanished; %d former neighbor(s) cleaned up, \
     %d update messages\n"
    (List.length former) counters.Message.update_messages;
  probe "the departure:";
  Message.reset counters;
  Churn.connect network 40 reattach ~counters;
  Printf.printf "\npeer 40 rejoined at peer %d, %d update messages\n" reattach
    counters.Message.update_messages;
  probe "the rejoin:"

(* Event 2: the archive ingests a new batch of papers. *)
let () =
  let counters = Message.create () in
  for d = 500 to 519 do
    Local_index.add indices.(40)
      (Document.make ~id:((40 * 1000) + d) ~topics:[ 2 ] ())
  done;
  Update.local_change network ~origin:40
    ~summary:(Local_index.summary indices.(40))
    ~counters;
  Printf.printf
    "\npeer 40 ingested 20 new papers; the exponential index spread the \
     news in %d messages\n"
    counters.Message.update_messages;
  probe "the ingest:"

(* Event 3: a quiet peer leaves — the network barely notices. *)
let () =
  let counters = Message.create () in
  let leaver = 33 in
  ignore (Churn.disconnect_node network leaver ~counters);
  Printf.printf "\npeer %d (a small one) left: %d update messages\n" leaver
    counters.Message.update_messages;
  probe "a small departure:";
  Printf.printf
    "\nNo departing peer ever participated in its own cleanup - the\n\
     detecting neighbors did all the work, as Section 4.3 requires.\n"
