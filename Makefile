.PHONY: all check test bench bench-smoke bench-check bench-baseline clean

all:
	dune build

# Tier-1 verification: full build plus the whole test suite (which
# includes a tiny-scale smoke run of the bench harness).
check:
	dune build && dune runtest

test: check

# Full evaluation reproduction at default scale (slow).
bench:
	dune exec bench/main.exe

# Quick wall-clock check of the figure harness, micro section skipped.
bench-smoke:
	RI_NODES=2000 RI_TRIALS=5 RI_MICRO=0 dune exec bench/main.exe

# Regression gate: compare BENCH_results.json against the committed
# BENCH_baseline.json (threshold RI_BENCH_THRESHOLD percent, default 15).
# Exits nonzero on regression; a no-op until a baseline is committed.
bench-check:
	dune exec bench/regress.exe

# Refresh the committed baseline from the latest local bench run.
bench-baseline:
	cp BENCH_results.json BENCH_baseline.json

clean:
	dune clean
