.PHONY: all check test bench bench-smoke clean

all:
	dune build

# Tier-1 verification: full build plus the whole test suite (which
# includes a tiny-scale smoke run of the bench harness).
check:
	dune build && dune runtest

test: check

# Full evaluation reproduction at default scale (slow).
bench:
	dune exec bench/main.exe

# Quick wall-clock check of the figure harness, micro section skipped.
bench-smoke:
	RI_NODES=2000 RI_TRIALS=5 RI_MICRO=0 dune exec bench/main.exe

clean:
	dune clean
