(* Golden bit-identity tests: fig13 and fig18 at a small scale must
   reproduce, bit for bit, the cell values captured before the flat
   routing-index store and delta-update refactor landed.  Any change to
   aggregation order, goodness arithmetic or wave scheduling shows up
   here as a one-ULP difference long before it is visible in the
   rendered tables (which round to one decimal).

   The expected values are IEEE-754 bit patterns (Int64.bits_of_float)
   captured at nodes=200, trials=3, seed=42 on the pre-refactor tree.
   Regenerate by running the suite with RI_GOLDEN_PRINT=1 and pasting
   the printed table — but only when a change is *meant* to alter the
   numbers, and say so in the commit. *)

open Ri_sim

let nodes = 200

let spec = { Runner.min_trials = 3; max_trials = 3; target_rel_error = 0.1 }

let base = Config.scaled { Config.base with Config.seed = 42 } ~num_nodes:nodes

let cells report =
  let open Ri_experiments in
  List.concat
    (List.mapi
       (fun r row ->
         List.filteri (fun _ c -> c.Report.value <> None) row
         |> List.mapi (fun c cell ->
                ( Printf.sprintf "r%dc%d" r c,
                  match cell.Report.value with Some v -> v | None -> 0. )))
       report.Report.rows)

let expected_fig13 =
  [
    ("r0c0", 0x4073655555555555L);
    ("r0c1", 0x4077300000000000L);
    ("r1c0", 0x4072baaaaaaaaaabL);
    ("r1c1", 0x4073faaaaaaaaaabL);
    ("r2c0", 0x4072baaaaaaaaaabL);
    ("r2c1", 0x4073faaaaaaaaaabL);
    ("r3c0", 0x4076355555555555L);
    ("r3c1", 0x4077f55555555555L);
  ]

let expected_fig18 =
  [
    ("r0c0", 0x4068e00000000000L);
    ("r0c1", 0x406b600000000000L);
    ("r0c2", 0x406d6aaaaaaaaaabL);
    ("r1c0", 0x405beaaaaaaaaaabL);
    ("r1c1", 0x405f400000000000L);
    ("r1c2", 0x405bc00000000000L);
    ("r2c0", 0x4019555555555555L);
    ("r2c1", 0x401aaaaaaaaaaaabL);
    ("r2c2", 0x401c000000000000L);
  ]

let check_report id run expected () =
  let report = run ~base ~spec in
  let actual = cells report in
  if Ri_util.Env.int "RI_GOLDEN_PRINT" 0 <> 0 then
    List.iter
      (fun (k, v) ->
        Printf.printf "    (%S, 0x%LxL);\n" k (Int64.bits_of_float v))
      actual;
  Alcotest.(check int)
    (id ^ " cell count") (List.length expected) (List.length actual);
  List.iter2
    (fun (k, bits) (k', v) ->
      Alcotest.(check string) (id ^ " cell key") k k';
      Alcotest.(check int64)
        (Printf.sprintf "%s %s bits" id k)
        bits (Int64.bits_of_float v))
    expected actual

(* Snapshot round trip: a setup saved and reloaded must route queries
   and updates bit-for-bit like the generator-built original — the
   loaded stores replay the saved peer iteration order, so any drift in
   the persistence layer shows up as a metric difference here. *)
let check_same_metrics id (a : Trial.query_metrics) (b : Trial.query_metrics) =
  Alcotest.(check int) (id ^ " messages") a.Trial.messages b.Trial.messages;
  Alcotest.(check int) (id ^ " found") a.Trial.found b.Trial.found;
  Alcotest.(check int)
    (id ^ " visited") a.Trial.nodes_visited b.Trial.nodes_visited;
  Alcotest.(check bool) (id ^ " satisfied") a.Trial.satisfied b.Trial.satisfied;
  Alcotest.(check int64)
    (id ^ " bytes bits")
    (Int64.bits_of_float a.Trial.bytes)
    (Int64.bits_of_float b.Trial.bytes)

let snapshot_round_trip ?(quant_bits = None) ~purpose ~rooted () =
  let cfg =
    Config.scaled
      { Config.base with Config.seed = 47; quant_bits }
      ~num_nodes:nodes
  in
  let trial = 1 in
  let built = Trial.build ~purpose cfg ~trial in
  let path = Filename.temp_file "risnap" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Snapshot.save path cfg ~trial ~rooted built;
      let loaded = Snapshot.load path cfg ~trial in
      Alcotest.(check int) "origin" built.Trial.origin loaded.Trial.origin;
      check_same_metrics "query"
        (Trial.run_query_on cfg built)
        (Trial.run_query_on cfg loaded);
      let ub = Trial.run_update_on cfg built in
      let ul = Trial.run_update_on cfg loaded in
      Alcotest.(check int)
        "update messages" ub.Trial.update_messages ul.Trial.update_messages;
      Alcotest.(check int)
        "update wire bytes" ub.Trial.update_wire_bytes ul.Trial.update_wire_bytes)

let snapshot_rejects_mismatch () =
  let cfg = Config.scaled { Config.base with Config.seed = 47 } ~num_nodes:nodes in
  let trial = 1 in
  let built = Trial.build ~purpose:Trial.For_update cfg ~trial in
  let path = Filename.temp_file "risnap" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Snapshot.save path cfg ~trial ~rooted:false built;
      match Snapshot.load path { cfg with Config.seed = 48 } ~trial with
      | _ -> Alcotest.fail "fingerprint mismatch accepted"
      | exception Failure _ -> ())

let suite =
  ( "golden",
    [
      Alcotest.test_case "fig13 bit-identical at 200 nodes" `Slow
        (check_report "fig13" Ri_experiments.Fig13_schemes.run expected_fig13);
      Alcotest.test_case "fig18 bit-identical at 200 nodes" `Slow
        (check_report "fig18" Ri_experiments.Fig18_updates.run expected_fig18);
      Alcotest.test_case "snapshot round trip (converged)" `Quick
        (snapshot_round_trip ~purpose:Trial.For_update ~rooted:false);
      Alcotest.test_case "snapshot round trip (rooted)" `Quick
        (snapshot_round_trip ~purpose:Trial.For_query ~rooted:true);
      Alcotest.test_case "snapshot round trip (quantized)" `Quick
        (snapshot_round_trip ~quant_bits:(Some 8) ~purpose:Trial.For_update
           ~rooted:false);
      Alcotest.test_case "snapshot rejects config mismatch" `Quick
        snapshot_rejects_mismatch;
    ] )
