(* Observability layer: counter/gauge/histogram math, disabled-mode
   no-op behavior, env boolean parsing, telemetry surfacing, and the
   tentpole guarantee — trace output is byte-identical whatever the
   pool width. *)

open Ri_util
open Ri_obs
open Ri_sim

let with_metrics f =
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled was;
      Metrics.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Metrics.                                                            *)

let test_counter_math () =
  with_metrics (fun () ->
      let c = Metrics.counter ~help:"Test counter." "ri_test_counter_total" in
      Metrics.incr c;
      Metrics.add c 41;
      Alcotest.(check int) "value" 42 (Metrics.counter_value c);
      let text = Metrics.render () in
      Alcotest.(check bool) "rendered" true
        (Astring.String.is_infix ~affix:"ri_test_counter_total 42" text);
      Alcotest.(check bool) "typed" true
        (Astring.String.is_infix ~affix:"# TYPE ri_test_counter_total counter"
           text))

let test_gauge_math () =
  with_metrics (fun () ->
      let g = Metrics.gauge ~labels:[ ("k", "v") ] "ri_test_gauge" in
      Metrics.set g 2.5;
      Alcotest.(check (float 0.)) "value" 2.5 (Metrics.gauge_value g);
      Alcotest.(check bool) "rendered with labels" true
        (Astring.String.is_infix ~affix:"ri_test_gauge{k=\"v\"} 2.5"
           (Metrics.render ())))

let test_histogram_math () =
  with_metrics (fun () ->
      let h =
        Metrics.histogram ~buckets:[| 1.; 2.; 5. |] "ri_test_hist"
      in
      List.iter (Metrics.observe h) [ 0.5; 1.5; 10.; 2.0 ];
      Alcotest.(check int) "count" 4 (Metrics.hist_count h);
      Alcotest.(check (float 1e-9)) "sum" 14.0 (Metrics.hist_sum h);
      Alcotest.(check (array int)) "raw buckets" [| 1; 2; 0; 1 |]
        (Metrics.hist_buckets h);
      let text = Metrics.render () in
      (* Bucket counts are cumulative in the exposition format. *)
      Alcotest.(check bool) "le=2 cumulative" true
        (Astring.String.is_infix ~affix:"ri_test_hist_bucket{le=\"2\"} 3" text);
      Alcotest.(check bool) "+Inf cumulative" true
        (Astring.String.is_infix ~affix:"ri_test_hist_bucket{le=\"+Inf\"} 4"
           text))

let test_disabled_noop () =
  let c = Metrics.counter "ri_test_disabled_total" in
  let h = Metrics.histogram ~buckets:[| 1. |] "ri_test_disabled_hist" in
  Metrics.set_enabled false;
  Metrics.incr c;
  Metrics.observe h 0.5;
  let ran = ref false in
  let v =
    Phase.time "test-disabled-phase" (fun () ->
        ran := true;
        17)
  in
  Alcotest.(check int) "phase passes value through" 17 v;
  Alcotest.(check bool) "phase body ran" true !ran;
  Alcotest.(check int) "counter untouched" 0 (Metrics.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.hist_count h)

let test_registration_idempotent () =
  let a = Metrics.counter "ri_test_idem_total" in
  let b = Metrics.counter "ri_test_idem_total" in
  with_metrics (fun () ->
      Metrics.incr a;
      Metrics.incr b;
      Alcotest.(check int) "one underlying counter" 2 (Metrics.counter_value a));
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: ri_test_idem_total already registered as a counter")
    (fun () -> ignore (Metrics.gauge "ri_test_idem_total"))

(* ------------------------------------------------------------------ *)
(* Env booleans (satellite: validated getters).                        *)

let with_env name value f =
  let old = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv name (match old with Some v -> v | None -> ""))
    f

let test_env_bool () =
  List.iter
    (fun (raw, expect) ->
      with_env "RI_TEST_BOOL" raw (fun () ->
          Alcotest.(check bool) raw expect (Env.bool "RI_TEST_BOOL" false)))
    [
      ("1", true); ("true", true); ("YES", true); ("on", true);
      ("0", false); ("false", false); ("No", false); ("off", false);
      ("junk", false); ("", false);
    ];
  with_env "RI_TEST_BOOL" "junk" (fun () ->
      Alcotest.(check bool) "junk keeps true default" true
        (Env.bool "RI_TEST_BOOL" true))

let test_env_int_range () =
  with_env "RI_TEST_RANGE" "99" (fun () ->
      Alcotest.(check int) "above max falls back" 5
        (Env.int ~min:1 ~max:10 "RI_TEST_RANGE" 5));
  with_env "RI_TEST_RANGE" "7" (fun () ->
      Alcotest.(check int) "in range" 7 (Env.int ~min:1 ~max:10 "RI_TEST_RANGE" 5))

(* ------------------------------------------------------------------ *)
(* Deterministic tracing.                                              *)

let small = Config.scaled Config.base ~num_nodes:300

let trace_run jobs =
  Trace.clear ();
  Trace.start ();
  Fun.protect ~finally:Trace.stop (fun () ->
      let spec =
        { Runner.min_trials = 3; max_trials = 6; target_rel_error = 0.05 }
      in
      Pool.with_pool ~jobs (fun pool ->
          let cfg = Config.with_search small (Config.Ri (Config.eri small)) in
          ignore
            (Runner.run ~pool spec (fun ~trial ->
                 float_of_int (Trial.run_query cfg ~trial).Trial.messages));
          ignore
            (Runner.run ~pool spec (fun ~trial ->
                 float_of_int
                   (Trial.run_update cfg ~trial).Trial.update_messages))));
  let jsonl = Trace.render_jsonl () in
  let chrome = Trace.render_chrome () in
  Trace.clear ();
  (jsonl, chrome)

let test_trace_bit_identical () =
  let jsonl1, chrome1 = trace_run 1 in
  let jsonl4, chrome4 = trace_run 4 in
  Alcotest.(check bool) "trace not empty" true (String.length jsonl1 > 0);
  Alcotest.(check bool) "query hops recorded" true
    (Astring.String.is_infix ~affix:"\"name\":\"forward\"" jsonl1);
  Alcotest.(check bool) "stop conditions recorded" true
    (Astring.String.is_infix ~affix:"\"name\":\"stop\"" jsonl1);
  Alcotest.(check bool) "update hops recorded" true
    (Astring.String.is_infix ~affix:"\"name\":\"update_hop\"" jsonl1);
  Alcotest.(check string) "jsonl byte-identical at jobs 1 vs 4" jsonl1 jsonl4;
  Alcotest.(check string) "chrome byte-identical at jobs 1 vs 4" chrome1 chrome4

(* The same guarantee with the fault plane switched on: the fault plan
   draws from its own (seed, trial)-derived generator, so drops,
   timeouts and repairs land identically whatever the pool width. *)
let faulty_trace_run jobs =
  Trace.clear ();
  Trace.start ();
  Fun.protect ~finally:Trace.stop (fun () ->
      let spec =
        { Runner.min_trials = 3; max_trials = 6; target_rel_error = 0.05 }
      in
      Pool.with_pool ~jobs (fun pool ->
          let fault =
            {
              Ri_p2p.Fault.none with
              Ri_p2p.Fault.update_loss = 0.3;
              update_delay = 0.15;
              delay_waves = 2;
              crash = 0.1;
              link_flap = 0.02;
              drift = 0.75;
              stale_after = Some 1;
              retries = 2;
              backoff = 1;
            }
          in
          let cfg = Config.with_search small (Config.Ri (Config.eri small)) in
          let cfg = { cfg with Config.fault } in
          ignore
            (Runner.run ~pool spec (fun ~trial ->
                 (Trial.run_query_faulty cfg ~trial).Trial.f_messages_per_result))));
  let jsonl = Trace.render_jsonl () in
  Trace.clear ();
  jsonl

let test_faulty_trace_bit_identical () =
  let jsonl1 = faulty_trace_run 1 in
  let jsonl4 = faulty_trace_run 4 in
  Alcotest.(check bool) "fault events recorded" true
    (Astring.String.is_infix ~affix:"\"name\":\"update_dropped\"" jsonl1);
  Alcotest.(check string) "faulty jsonl byte-identical at jobs 1 vs 4" jsonl1
    jsonl4

let test_chrome_shape () =
  let _, chrome = trace_run 1 in
  Alcotest.(check bool) "traceEvents envelope" true
    (Astring.String.is_prefix ~affix:"{\"traceEvents\":[" chrome);
  Alcotest.(check bool) "closes envelope" true
    (Astring.String.is_suffix ~affix:"\"displayTimeUnit\":\"ms\"}\n" chrome)

let test_trace_off_collects_nothing () =
  Alcotest.(check bool) "not recording" false (Trace.recording ());
  let cfg = Config.with_search small (Config.Ri (Config.eri small)) in
  ignore (Trial.run_query cfg ~trial:0);
  Alcotest.(check string) "no events" "" (Trace.render_jsonl ())

(* Emitted artifacts must satisfy the strict JSON parser — a malformed
   export is a failure here, not a quirk tolerated downstream. *)
let test_trace_strict_json () =
  let jsonl, chrome = trace_run 1 in
  let doc = Json.parse_exn chrome in
  (match Json.member "traceEvents" doc with
  | Some (Json.Arr (_ :: _)) -> ()
  | _ -> Alcotest.fail "chrome trace: traceEvents missing or empty");
  String.split_on_char '\n' jsonl
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match Json.parse line with
         | Error e -> Alcotest.failf "trace line rejected: %s\n%s" e line
         | Ok j ->
             if Json.member "name" j = None then
               Alcotest.failf "trace line without name: %s" line)

(* ------------------------------------------------------------------ *)
(* Decision provenance (tentpole): byte-identical across pool widths,   *)
(* strict-JSON clean, and silent when off.                              *)

let decision_run jobs =
  Decision.clear ();
  Decision.start ();
  Fun.protect ~finally:Decision.stop (fun () ->
      let spec =
        { Runner.min_trials = 3; max_trials = 6; target_rel_error = 0.05 }
      in
      Pool.with_pool ~jobs (fun pool ->
          let cfg = Config.with_search small (Config.Ri Config.cri) in
          ignore
            (Runner.run ~pool spec (fun ~trial ->
                 float_of_int (Trial.run_query cfg ~trial).Trial.messages))));
  let jsonl = Decision.render_jsonl () in
  Decision.clear ();
  jsonl

let test_decision_bit_identical () =
  let jsonl1 = decision_run 1 in
  let jsonl4 = decision_run 4 in
  Alcotest.(check bool) "decisions recorded" true
    (Astring.String.is_infix ~affix:"\"kind\":\"decide\"" jsonl1);
  Alcotest.(check bool) "walk advances recorded" true
    (Astring.String.is_infix ~affix:"\"kind\":\"follow\"" jsonl1);
  Alcotest.(check bool) "stop recorded" true
    (Astring.String.is_infix ~affix:"\"kind\":\"stop\"" jsonl1);
  Alcotest.(check string) "decision jsonl byte-identical at jobs 1 vs 4"
    jsonl1 jsonl4

let test_decision_strict_json () =
  let jsonl = decision_run 2 in
  String.split_on_char '\n' jsonl
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match Json.parse line with
         | Error e -> Alcotest.failf "decision line rejected: %s\n%s" e line
         | Ok j ->
             List.iter
               (fun key ->
                 if Json.member key j = None then
                   Alcotest.failf "decision line without %s: %s" key line)
               [ "unit"; "trial"; "seq"; "kind" ])

let test_decision_off_collects_nothing () =
  Alcotest.(check bool) "not recording" false (Decision.recording ());
  let cfg = Config.with_search small (Config.Ri Config.cri) in
  ignore (Trial.run_query cfg ~trial:0);
  Alcotest.(check string) "no records" "" (Decision.render_jsonl ())

(* Satellite: query/update phase histograms use the µs-range preset;
   coarser phases keep the default layout. *)
let test_phase_bucket_presets () =
  with_metrics (fun () ->
      ignore (Phase.time "query" (fun () -> 0));
      ignore (Phase.time "placement" (fun () -> 0));
      let text = Metrics.render () in
      Alcotest.(check bool) "query histogram has 1e-06 bucket" true
        (Astring.String.is_infix
           ~affix:"ri_phase_seconds_bucket{le=\"1e-06\",phase=\"query\"}" text);
      Alcotest.(check bool) "placement histogram keeps default buckets" false
        (Astring.String.is_infix
           ~affix:"ri_phase_seconds_bucket{le=\"1e-06\",phase=\"placement\"}"
           text))

(* ------------------------------------------------------------------ *)
(* Causal spans: byte-identical at any pool width, causally shaped.    *)

let span_run ?(faulty = false) jobs =
  Span.clear ();
  Span.start ();
  Fun.protect ~finally:Span.stop (fun () ->
      let spec =
        { Runner.min_trials = 3; max_trials = 6; target_rel_error = 0.05 }
      in
      Pool.with_pool ~jobs (fun pool ->
          let cfg = Config.with_search small (Config.Ri (Config.eri small)) in
          let cfg =
            if not faulty then cfg
            else
              {
                cfg with
                Config.fault =
                  {
                    Ri_p2p.Fault.none with
                    Ri_p2p.Fault.update_loss = 0.3;
                    update_delay = 0.15;
                    delay_waves = 2;
                    crash = 0.1;
                    drift = 0.75;
                    stale_after = Some 1;
                    retries = 2;
                    backoff = 1;
                  };
              }
          in
          (if faulty then
             ignore
               (Runner.run ~pool spec (fun ~trial ->
                    (Trial.run_query_faulty cfg ~trial)
                      .Trial.f_messages_per_result))
           else
             ignore
               (Runner.run ~pool spec (fun ~trial ->
                    float_of_int (Trial.run_query cfg ~trial).Trial.messages)));
          ignore
            (Runner.run ~pool spec (fun ~trial ->
                 float_of_int
                   (Trial.run_update cfg ~trial).Trial.update_messages))));
  let jsonl = Span.render_jsonl () in
  let chrome = Span.render_chrome () in
  let otlp = Span.render_otlp () in
  Span.clear ();
  (jsonl, chrome, otlp)

let test_span_bit_identical () =
  let jsonl1, chrome1, otlp1 = span_run 1 in
  let jsonl4, chrome4, otlp4 = span_run 4 in
  Alcotest.(check bool) "spans recorded" true (String.length jsonl1 > 0);
  Alcotest.(check bool) "query roots present" true
    (Astring.String.is_infix ~affix:"\"name\":\"query\"" jsonl1);
  Alcotest.(check bool) "hop children present" true
    (Astring.String.is_infix ~affix:"\"name\":\"hop\"" jsonl1);
  Alcotest.(check bool) "update rounds present" true
    (Astring.String.is_infix ~affix:"\"name\":\"round\"" jsonl1);
  Alcotest.(check string) "span jsonl byte-identical" jsonl1 jsonl4;
  Alcotest.(check string) "span chrome byte-identical" chrome1 chrome4;
  Alcotest.(check string) "span otlp byte-identical" otlp1 otlp4

let test_span_faulty_bit_identical () =
  let jsonl1, _, _ = span_run ~faulty:true 1 in
  let jsonl4, _, _ = span_run ~faulty:true 4 in
  Alcotest.(check bool) "fault spans recorded" true
    (Astring.String.is_infix ~affix:"\"cat\":\"fault\"" jsonl1);
  Alcotest.(check string) "faulty span jsonl byte-identical" jsonl1 jsonl4

(* Every child must reference an earlier sid of its own trial, and end
   no earlier than it starts — the causal structure the renderers draw
   edges from.  Both structured exports must satisfy the strict JSON
   parser. *)
let test_span_causality () =
  Span.clear ();
  Span.start ();
  Fun.protect ~finally:Span.stop (fun () ->
      let cfg = Config.with_search small (Config.Ri (Config.eri small)) in
      ignore (Trial.run_query cfg ~trial:0);
      ignore (Trial.run_update cfg ~trial:0));
  let groups = Span.spans () in
  Alcotest.(check bool) "spans collected" true (groups <> []);
  List.iter
    (fun (_, records) ->
      List.iter
        (fun (r : Span.record) ->
          if r.Span.parent >= 0 then
            Alcotest.(check bool) "parent created before child" true
              (r.Span.parent < r.Span.sid);
          Alcotest.(check bool) "t1 after t0" true (r.Span.t1 >= r.Span.t0))
        records)
    groups;
  let chrome = Span.render_chrome () in
  let otlp = Span.render_otlp () in
  Span.clear ();
  (match Json.parse chrome with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "chrome spans rejected: %s" e);
  match Json.parse otlp with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "otlp spans rejected: %s" e

let test_span_off_collects_nothing () =
  Alcotest.(check bool) "not recording" false (Span.recording ());
  let cfg = Config.with_search small (Config.Ri (Config.eri small)) in
  ignore (Trial.run_query cfg ~trial:0);
  Alcotest.(check string) "no spans" "" (Span.render_jsonl ())

(* ------------------------------------------------------------------ *)
(* Registry domain-safety: concurrent registration and recording from  *)
(* several domains must land every observation exactly once.           *)

let test_racing_registration () =
  with_metrics (fun () ->
      let domains =
        Array.init 4 (fun _ ->
            Domain.spawn (fun () ->
                (* same names from every domain: registration must be
                   race-free and idempotent *)
                let c = Metrics.counter "ri_test_race_total" in
                let s = Sketch.series "ri_test_race_sketch" in
                for i = 1 to 1000 do
                  Metrics.incr c;
                  Sketch.observe s (float_of_int i)
                done))
      in
      Array.iter Domain.join domains;
      let text = Metrics.render () in
      Alcotest.(check bool) "all increments counted" true
        (Astring.String.is_infix ~affix:"ri_test_race_total 4000" text);
      Alcotest.(check int) "all observations sketched" 4000
        (Sketch.count (Sketch.snapshot (Sketch.series "ri_test_race_sketch")));
      Sketch.reset ())

(* ------------------------------------------------------------------ *)
(* Per-phase GC profiling.                                             *)

let test_gcprof_wrap () =
  Gcprof.reset ();
  let v =
    Gcprof.wrap "gcprof_test" (fun () ->
        Array.length (Array.init 100_000 (fun i -> float_of_int i)))
  in
  Alcotest.(check int) "body result" 100_000 v;
  match List.filter (fun s -> s.Gcprof.g_phase = "gcprof_test") (Gcprof.stats ()) with
  | [ s ] ->
      Alcotest.(check int) "one sample" 1 s.Gcprof.g_samples;
      Alcotest.(check bool) "minor words counted" true
        (s.Gcprof.g_minor_words > 100_000.);
      Alcotest.(check bool) "table rendered" true
        (List.exists
           (fun l -> Astring.String.is_infix ~affix:"gcprof_test" l)
           (Gcprof.table_lines ()));
      Gcprof.reset ();
      Alcotest.(check int) "reset empties" 0 (List.length (Gcprof.stats ()))
  | other ->
      Alcotest.failf "expected one gcprof_test entry, got %d"
        (List.length other)

(* ------------------------------------------------------------------ *)
(* Live HTTP endpoint.                                                 *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 512 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      (try drain () with Unix.Unix_error _ -> ());
      Buffer.contents buf)

let test_serve_endpoints () =
  let srv = Serve.start ~port:0 ~metrics:(fun () -> "ri_test_metric 1\n") () in
  Fun.protect
    ~finally:(fun () -> Serve.stop srv)
    (fun () ->
      let port = Serve.port srv in
      Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
      let health = http_get port "/healthz" in
      Alcotest.(check bool) "healthz 200" true
        (Astring.String.is_prefix ~affix:"HTTP/1.1 200 OK" health);
      Alcotest.(check bool) "healthz body" true
        (Astring.String.is_suffix ~affix:"ok\n" health);
      let metrics = http_get port "/metrics" in
      Alcotest.(check bool) "metrics body served" true
        (Astring.String.is_infix ~affix:"ri_test_metric 1" metrics);
      Serve.Progress.begin_run ~label:"serve-test" ~total:10 ();
      Serve.Progress.set_trials 4;
      let progress = http_get port "/progress" in
      (match Astring.String.cut ~sep:"\r\n\r\n" progress with
      | Some (_, body) -> (
          match Json.parse body with
          | Error e -> Alcotest.failf "/progress not strict JSON: %s" e
          | Ok j ->
              Alcotest.(check bool) "label carried" true
                (Json.member "label" j = Some (Json.Str "serve-test"));
              Alcotest.(check bool) "trials carried" true
                (match Json.member "trials_done" j with
                | Some v -> Json.to_float v = Some 4.
                | None -> false))
      | None -> Alcotest.fail "/progress: no header/body split");
      let missing = http_get port "/nope" in
      Alcotest.(check bool) "404 for unknown path" true
        (Astring.String.is_prefix ~affix:"HTTP/1.1 404" missing));
  (* after stop, the port must refuse connections *)
  Alcotest.(check bool) "stopped server refuses" true
    (try
       ignore (http_get (Serve.port srv) "/healthz");
       false
     with Unix.Unix_error _ -> true)

let body_of response =
  match Astring.String.cut ~sep:"\r\n\r\n" response with
  | Some (_, body) -> body
  | None -> Alcotest.failf "no header/body split in %S" response

let strict_json what response =
  Alcotest.(check bool) (what ^ " 200") true
    (Astring.String.is_prefix ~affix:"HTTP/1.1 200 OK" response);
  match Json.parse (body_of response) with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s not strict JSON: %s" what e

let test_serve_traffic_endpoint () =
  Serve.Traffic.clear ();
  let srv = Serve.start ~port:0 ~metrics:(fun () -> "") () in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop srv;
      Serve.Traffic.clear ())
    (fun () ->
      let port = Serve.port srv in
      (* the empty state is itself valid JSON with an empty point list *)
      let j = strict_json "/traffic (empty)" (http_get port "/traffic") in
      Alcotest.(check bool) "empty points" true
        (Json.member "points" j = Some (Json.Arr []));
      Serve.Traffic.publish "{\"points\": [{\"qps\": 7}], \"knee_qps\": 7}";
      let j = strict_json "/traffic (published)" (http_get port "/traffic") in
      (match Json.member "points" j with
      | Some (Json.Arr [ p ]) ->
          Alcotest.(check bool) "published point served" true
            (Option.bind (Json.member "qps" p) Json.to_float = Some 7.)
      | _ -> Alcotest.fail "published snapshot not served back");
      Serve.Traffic.clear ();
      let j = strict_json "/traffic (cleared)" (http_get port "/traffic") in
      Alcotest.(check bool) "clear resets to the empty state" true
        (Json.member "points" j = Some (Json.Arr [])))

(* Two servers racing for ephemeral ports must come up independently:
   distinct ports, both serving, both stopping cleanly.  (This is the
   CI pattern: a backgrounded sweep's server plus an ad-hoc one.) *)
let test_serve_ephemeral_port_race () =
  let a = Serve.start ~port:0 ~metrics:(fun () -> "a\n") () in
  let b =
    try Serve.start ~port:0 ~metrics:(fun () -> "b\n") ()
    with e ->
      Serve.stop a;
      raise e
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop a;
      Serve.stop b)
    (fun () ->
      Alcotest.(check bool) "distinct ephemeral ports" true
        (Serve.port a <> Serve.port b);
      Alcotest.(check bool) "first serves its own metrics" true
        (Astring.String.is_suffix ~affix:"a\n"
           (http_get (Serve.port a) "/metrics"));
      Alcotest.(check bool) "second serves its own metrics" true
        (Astring.String.is_suffix ~affix:"b\n"
           (http_get (Serve.port b) "/metrics")))

(* The live-endpoint contract under load: while a traffic sweep runs in
   the background, /progress and /traffic stay strict-JSON at every
   poll, the sweep's own publishes land, and shutdown is clean with the
   port refusing connections afterwards. *)
let test_serve_under_background_sweep () =
  let module Traffic = Ri_experiments.Traffic in
  let small = Config.scaled Config.base ~num_nodes:300 in
  let cfg = Config.with_search small (Config.Ri (Config.eri small)) in
  let opts =
    {
      Traffic.default_opts with
      Traffic.o_qps = [ 200.; 400. ];
      o_duration = 0.1;
      o_service_rate = 5000.;
      o_link_latency = 0.1;
      o_trials = 2;
    }
  in
  Serve.Traffic.clear ();
  let srv = Serve.start ~port:0 ~metrics:(fun () -> "") () in
  let stopped = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !stopped then Serve.stop srv;
      Serve.Traffic.clear ())
    (fun () ->
      let port = Serve.port srv in
      let sweep_done = Atomic.make false in
      let dom =
        Domain.spawn (fun () ->
            Fun.protect
              ~finally:(fun () -> Atomic.set sweep_done true)
              (fun () -> Traffic.sweep ~opts cfg ()))
      in
      (* poll both endpoints until the sweep finishes; every response
         must parse strictly *)
      let polls = ref 0 in
      while not (Atomic.get sweep_done) do
        incr polls;
        ignore (strict_json "/progress (mid-sweep)" (http_get port "/progress"));
        ignore (strict_json "/traffic (mid-sweep)" (http_get port "/traffic"))
      done;
      let points = Domain.join dom in
      Alcotest.(check bool) "polled at least once mid-sweep" true (!polls > 0);
      Alcotest.(check int) "sweep finished both points" 2 (List.length points);
      (* after the sweep, /traffic carries the full document *)
      let j = strict_json "/traffic (after)" (http_get port "/traffic") in
      (match Json.member "points" j with
      | Some (Json.Arr ps) ->
          Alcotest.(check int) "both points published" 2 (List.length ps);
          List.iter
            (fun p ->
              Alcotest.(check bool) "decomposition present" true
                (Json.member "queue_ms" p <> None);
              match Json.member "q_hotspots" p with
              | Some (Json.Arr (_ :: _)) -> ()
              | _ -> Alcotest.fail "hotspots missing from the live snapshot")
            ps
      | _ -> Alcotest.fail "no points array after the sweep");
      let progress = strict_json "/progress (after)" (http_get port "/progress") in
      Alcotest.(check bool) "progress label names the sweep" true
        (match Json.member "label" progress with
        | Some (Json.Str s) -> Astring.String.is_prefix ~affix:"traffic" s
        | _ -> false);
      Serve.stop srv;
      stopped := true;
      Alcotest.(check bool) "port refuses after clean shutdown" true
        (try
           ignore (http_get port "/healthz");
           false
         with Unix.Unix_error _ -> true))

(* ------------------------------------------------------------------ *)
(* Telemetry surfacing.                                                *)

let test_telemetry_lines () =
  let cache = Telemetry.cache_line () in
  let pool = Telemetry.pool_line () in
  Alcotest.(check bool) "cache line" true
    (Astring.String.is_prefix ~affix:"setup-cache:" cache);
  Alcotest.(check bool) "pool line" true
    (Astring.String.is_prefix ~affix:"pool:" pool);
  with_metrics (fun () ->
      Telemetry.export_metrics ();
      let text = Metrics.render () in
      Alcotest.(check bool) "cache gauges exported" true
        (Astring.String.is_infix ~affix:"ri_setup_cache_hits" text);
      Alcotest.(check bool) "pool gauges exported" true
        (Astring.String.is_infix ~affix:"ri_pool_jobs" text))

let suite =
  ( "observability",
    [
      Alcotest.test_case "counter math" `Quick test_counter_math;
      Alcotest.test_case "gauge math" `Quick test_gauge_math;
      Alcotest.test_case "histogram math" `Quick test_histogram_math;
      Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_noop;
      Alcotest.test_case "registration idempotent" `Quick
        test_registration_idempotent;
      Alcotest.test_case "env bool parsing" `Quick test_env_bool;
      Alcotest.test_case "env int range" `Quick test_env_int_range;
      Alcotest.test_case "trace byte-identical across jobs" `Quick
        test_trace_bit_identical;
      Alcotest.test_case "faulty trace byte-identical across jobs" `Quick
        test_faulty_trace_bit_identical;
      Alcotest.test_case "chrome trace shape" `Quick test_chrome_shape;
      Alcotest.test_case "no recording without start" `Quick
        test_trace_off_collects_nothing;
      Alcotest.test_case "telemetry lines and gauges" `Quick
        test_telemetry_lines;
      Alcotest.test_case "spans byte-identical across jobs" `Quick
        test_span_bit_identical;
      Alcotest.test_case "faulty spans byte-identical across jobs" `Quick
        test_span_faulty_bit_identical;
      Alcotest.test_case "span causality and strict JSON" `Quick
        test_span_causality;
      Alcotest.test_case "no spans without start" `Quick
        test_span_off_collects_nothing;
      Alcotest.test_case "racing registration across domains" `Quick
        test_racing_registration;
      Alcotest.test_case "gcprof wrap accumulates" `Quick test_gcprof_wrap;
      Alcotest.test_case "live HTTP endpoint" `Quick test_serve_endpoints;
      Alcotest.test_case "/traffic publish, read back, clear" `Quick
        test_serve_traffic_endpoint;
      Alcotest.test_case "ephemeral-port race" `Quick
        test_serve_ephemeral_port_race;
      Alcotest.test_case "endpoints strict under a backgrounded sweep"
        `Quick test_serve_under_background_sweep;
    ] )
