(* The flat structure-of-arrays row store against the boxed reference.

   The [Rowstore]-backed CRI/ERI replaced per-peer [Summary] hash
   tables under a bit-for-bit determinism contract: same float values,
   produced in the same summation order.  These tests hold the flat
   implementation to that contract by replaying random operation
   sequences against a boxed reference model that mirrors the old
   representation exactly — a peer -> [Summary] hash table created with
   the same initial size and mutated with the same key sequence — and
   demanding exact float equality (no epsilon) on every export. *)

open Ri_util
open Ri_content
open Ri_core

let exact = Alcotest.(array (float 0.))

let summary_exact =
  Alcotest.testable Summary.pp (fun (a : Summary.t) b ->
      a.Summary.total = b.Summary.total && a.Summary.by_topic = b.Summary.by_topic)

(* {2 Slice kernels vs boxed summary arithmetic} *)

let counts_gen width =
  QCheck.Gen.(array_size (return width) (float_range 0. 1000.))

(* Random rows embedded at a random offset inside a larger backing
   array, so the kernels are exercised as the store uses them: on
   interior slices, not whole arrays. *)
let slice_case =
  QCheck.make
    ~print:(fun (a, b, k, _) ->
      Printf.sprintf "a=%s b=%s k=%f"
        (String.concat "," (Array.to_list (Array.map string_of_float a)))
        (String.concat "," (Array.to_list (Array.map string_of_float b)))
        k)
    QCheck.Gen.(
      int_range 1 12 >>= fun width ->
      counts_gen width >>= fun a ->
      counts_gen width >>= fun b ->
      float_range 0. 4. >>= fun k ->
      int_range 0 7 >>= fun pad -> return (a, b, k, pad))

let embed pad row =
  let width = Array.length row in
  let backing = Array.make (pad + width + 3) Float.nan in
  Array.blit row 0 backing pad width;
  backing

let prop_add_slice =
  QCheck.Test.make ~name:"add_slice = Summary.add" ~count:300 slice_case
    (fun (a, b, _, pad) ->
      let width = Array.length a in
      let backing = embed pad a in
      Vecf.add_slice ~dst:backing ~dst_pos:pad b ~src_pos:0 ~len:width;
      let reference =
        Summary.add
          (Summary.make ~total:0. ~by_topic:a)
          (Summary.make ~total:0. ~by_topic:b)
      in
      Array.sub backing pad width = reference.Summary.by_topic)

let prop_sub_clamp_slice =
  QCheck.Test.make ~name:"sub_clamp_slice = Summary.sub" ~count:300 slice_case
    (fun (a, b, _, pad) ->
      let width = Array.length a in
      let backing = embed pad a in
      Vecf.sub_clamp_slice ~dst:backing ~dst_pos:pad b ~src_pos:0 ~len:width;
      let reference =
        Summary.sub
          (Summary.make ~total:0. ~by_topic:a)
          (Summary.make ~total:0. ~by_topic:b)
      in
      Array.sub backing pad width = reference.Summary.by_topic)

let prop_scale_slice =
  QCheck.Test.make ~name:"scale_slice = Summary.scale" ~count:300 slice_case
    (fun (a, _, k, pad) ->
      let width = Array.length a in
      let backing = embed pad a in
      Vecf.scale_slice backing ~pos:pad ~len:width k;
      let reference = Summary.scale (Summary.make ~total:0. ~by_topic:a) k in
      Array.sub backing pad width = reference.Summary.by_topic)

let prop_decay_slice =
  QCheck.Test.make ~name:"decay_slice = add (scale src k)" ~count:300
    slice_case (fun (a, b, k, pad) ->
      let width = Array.length a in
      let backing = embed pad a in
      Vecf.decay_slice ~dst:backing ~dst_pos:pad b ~src_pos:0 ~len:width ~k;
      let expected = Array.mapi (fun i x -> x +. (b.(i) *. k)) a in
      Array.sub backing pad width = expected)

let test_slice_bounds () =
  Alcotest.check_raises "slice past the end"
    (Invalid_argument "Vecf.add_slice: slice out of range") (fun () ->
      Vecf.add_slice ~dst:(Array.make 4 0.) ~dst_pos:2 (Array.make 4 0.)
        ~src_pos:0 ~len:3)

(* {2 Rowstore mechanics} *)

let test_rowstore_basics () =
  let s = Rowstore.create ~stride:3 () in
  Alcotest.(check int) "empty" 0 (Rowstore.count s);
  let off7 = Rowstore.ensure s 7 in
  (Rowstore.data s).(off7) <- 1.;
  let off3 = Rowstore.ensure s 3 in
  (Rowstore.data s).(off3 + 2) <- 2.;
  Alcotest.(check int) "two rows" 2 (Rowstore.count s);
  Alcotest.(check (list int)) "peers sorted" [ 3; 7 ] (Rowstore.peers s);
  Alcotest.(check (option int)) "find hits" (Some off7) (Rowstore.find s 7);
  Alcotest.(check (option int)) "find misses" None (Rowstore.find s 9);
  Alcotest.(check int) "ensure is idempotent" off7 (Rowstore.ensure s 7)

let test_rowstore_recycles_zeroed () =
  let s = Rowstore.create ~rows:2 ~stride:2 () in
  let off = Rowstore.ensure s 1 in
  (Rowstore.data s).(off) <- 5.;
  (Rowstore.data s).(off + 1) <- 6.;
  Rowstore.remove s 1;
  Alcotest.(check int) "row dropped" 0 (Rowstore.count s);
  let off' = Rowstore.ensure s 2 in
  Alcotest.(check int) "slot recycled" off off';
  Alcotest.check exact "recycled row starts clean" [| 0.; 0. |]
    (Array.sub (Rowstore.data s) off' 2)

let test_rowstore_growth_honors_hint () =
  (* A degree hint must not be quadrupled away by the growth floor:
     a 1-row store that needs a second row doubles to 2, not 4. *)
  let s = Rowstore.create ~rows:1 ~stride:5 () in
  ignore (Rowstore.ensure s 0);
  Alcotest.(check int) "hint-sized" 5 (Rowstore.capacity_words s);
  ignore (Rowstore.ensure s 1);
  Alcotest.(check int) "doubles from actual capacity" 10
    (Rowstore.capacity_words s);
  ignore (Rowstore.ensure s 2);
  Alcotest.(check int) "doubles again" 20 (Rowstore.capacity_words s)

let test_rowstore_growth_preserves_rows () =
  let s = Rowstore.create ~rows:1 ~stride:2 () in
  let off0 = Rowstore.ensure s 10 in
  (Rowstore.data s).(off0) <- 1.5;
  (Rowstore.data s).(off0 + 1) <- 2.5;
  ignore (Rowstore.ensure s 11);
  (* the backing array was reallocated; offsets are still valid *)
  let off0' = Option.get (Rowstore.find s 10) in
  Alcotest.check exact "row survived growth" [| 1.5; 2.5 |]
    (Array.sub (Rowstore.data s) off0' 2)

let test_rowstore_copy_is_independent () =
  let s = Rowstore.create ~rows:2 ~stride:2 () in
  let off = Rowstore.ensure s 4 in
  (Rowstore.data s).(off) <- 9.;
  let c = Rowstore.copy s in
  (* writes to either side stay private *)
  (Rowstore.data c).(off) <- 1.;
  Alcotest.check exact "original floats untouched" [| 9.; 0. |]
    (Array.sub (Rowstore.data s) off 2);
  (* inserting into the clone (copy-on-write path) must not leak into
     the original's peer table, and vice versa *)
  ignore (Rowstore.ensure c 5);
  Rowstore.remove s 4;
  Alcotest.(check (list int)) "clone kept its rows" [ 4; 5 ] (Rowstore.peers c);
  Alcotest.(check (list int)) "original kept its removal" [] (Rowstore.peers s)

(* {2 Flat CRI/ERI vs the boxed reference model} *)

(* The boxed reference mirrors the representation the flat store
   replaced: one [Summary] per peer in a hash table created with the
   same initial size (8) and driven by the same key sequence, so its
   iteration order matches the row store's by construction. *)
module Ref_model = struct
  type t = { width : int; local : Summary.t; rows : (int, Summary.t) Hashtbl.t }

  let create ~width ~local = { width; local; rows = Hashtbl.create 8 }

  let set_row t ~peer s = Hashtbl.replace t.rows peer s

  let remove_row t ~peer = Hashtbl.remove t.rows peer

  let aggregate_with_local t =
    let by_topic = Array.copy t.local.Summary.by_topic in
    let total = ref t.local.Summary.total in
    Hashtbl.iter
      (fun _ (r : Summary.t) ->
        total := !total +. r.Summary.total;
        Vecf.add_into ~dst:by_topic r.Summary.by_topic)
      t.rows;
    { Summary.total = !total; by_topic }

  let minus (all : Summary.t) (r : Summary.t) =
    {
      Summary.total = Float.max 0. (all.Summary.total -. r.Summary.total);
      by_topic =
        Array.mapi
          (fun i x -> Float.max 0. (x -. r.Summary.by_topic.(i)))
          all.Summary.by_topic;
    }

  let cri_export t ~exclude =
    let all = aggregate_with_local t in
    match exclude with
    | None -> all
    | Some peer -> (
        match Hashtbl.find_opt t.rows peer with
        | None -> all
        | Some r -> minus all r)

  let aggregate_rows t =
    let by_topic = Array.make t.width 0. in
    let total = ref 0. in
    Hashtbl.iter
      (fun _ (r : Summary.t) ->
        total := !total +. r.Summary.total;
        Vecf.add_into ~dst:by_topic r.Summary.by_topic)
      t.rows;
    { Summary.total = !total; by_topic }

  let eri_export t ~fanout ~exclude =
    let rest =
      let agg = aggregate_rows t in
      match exclude with
      | None -> agg
      | Some peer -> (
          match Hashtbl.find_opt t.rows peer with
          | None -> agg
          | Some r -> minus agg r)
    in
    let k = 1. /. fanout in
    {
      Summary.total = t.local.Summary.total +. (rest.Summary.total *. k);
      by_topic =
        Array.mapi
          (fun i x -> x +. (rest.Summary.by_topic.(i) *. k))
          t.local.Summary.by_topic;
    }
end

type op = Set of int * float array | Remove of int

let width = 5

let op_gen =
  QCheck.Gen.(
    int_range 0 6 >>= fun peer ->
    bool >>= fun remove ->
    if remove then return (Remove peer)
    else counts_gen width >>= fun row -> return (Set (peer, row)))

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Set (p, _) -> Printf.sprintf "set %d" p
             | Remove p -> Printf.sprintf "rm %d" p)
           ops))
    QCheck.Gen.(list_size (int_range 1 40) op_gen)

let local_summary =
  Summary.make ~total:7.5 ~by_topic:[| 1.; 0.; 2.5; 0.25; 3. |]

let summary_of_row row =
  Summary.make ~total:(Vecf.sum row) ~by_topic:(Array.copy row)

let replay_cri ops =
  let flat = Cri.create ~width ~local:local_summary () in
  let reference = Ref_model.create ~width ~local:local_summary in
  List.iter
    (function
      | Set (peer, row) ->
          let s = summary_of_row row in
          Cri.set_row flat ~peer s;
          Ref_model.set_row reference ~peer s
      | Remove peer ->
          Cri.remove_row flat ~peer;
          Ref_model.remove_row reference ~peer)
    ops;
  (flat, reference)

let exports_match flat reference =
  List.for_all
    (fun exclude ->
      let got = Cri.export flat ~exclude in
      let want = Ref_model.cri_export reference ~exclude in
      got.Summary.total = want.Summary.total
      && got.Summary.by_topic = want.Summary.by_topic)
    [ None; Some 0; Some 3; Some 6; Some 99 ]

let prop_cri_matches_reference =
  QCheck.Test.make ~name:"flat CRI = boxed reference (bit-exact)" ~count:200
    ops_arb (fun ops ->
      let flat, reference = replay_cri ops in
      exports_match flat reference)

let prop_eri_matches_reference =
  QCheck.Test.make ~name:"flat ERI = boxed reference (bit-exact)" ~count:200
    ops_arb (fun ops ->
      let fanout = 4. in
      let flat = Eri.create ~fanout ~width ~local:local_summary () in
      let reference = Ref_model.create ~width ~local:local_summary in
      List.iter
        (function
          | Set (peer, row) ->
              let s = summary_of_row row in
              Eri.set_row flat ~peer s;
              Ref_model.set_row reference ~peer s
          | Remove peer ->
              Eri.remove_row flat ~peer;
              Ref_model.remove_row reference ~peer)
        ops;
      List.for_all
        (fun exclude ->
          let got = Eri.export flat ~exclude in
          let want = Ref_model.eri_export reference ~fanout ~exclude in
          got.Summary.total = want.Summary.total
          && got.Summary.by_topic = want.Summary.by_topic)
        [ None; Some 0; Some 3; Some 6; Some 99 ])

let prop_copy_matches_original =
  QCheck.Test.make ~name:"Cri.copy exports = original (bit-exact)" ~count:100
    ops_arb (fun ops ->
      let flat, reference = replay_cri ops in
      let clone = Cri.copy flat in
      (* the clone answers like the original... *)
      exports_match clone reference
      &&
      (* ...and diverges independently once mutated (insertion forces
         the copy-on-write peer table to materialise) *)
      let extra = summary_of_row [| 10.; 11.; 12.; 13.; 14. |] in
      Cri.set_row clone ~peer:42 extra;
      Ref_model.set_row reference ~peer:42 extra;
      exports_match clone reference && exports_match flat reference = false
      || Cri.row flat ~peer:42 = None)

let test_row_roundtrip () =
  let flat = Cri.create ~width ~local:local_summary () in
  let s = summary_of_row [| 1.; 2.; 3.; 4.; 5. |] in
  Cri.set_row flat ~peer:2 s;
  Alcotest.check summary_exact "row readback" s
    (Option.get (Cri.row flat ~peer:2));
  Alcotest.(check bool) "absent row" true (Cri.row flat ~peer:9 = None)

(* {2 Quantized cell format} *)

let quant_case =
  QCheck.make
    ~print:(fun (bits, row) ->
      Printf.sprintf "bits=%d row=[%s]" bits
        (String.concat ";" (Array.to_list (Array.map string_of_float row))))
    QCheck.Gen.(
      int_range 1 16 >>= fun bits ->
      array_size (int_range 1 8) (float_range 0. 1e6) >>= fun row ->
      return (bits, row))

(* One encode/decode trip stays within the advertised log-bucket bound
   (γ/2 in log1p space, so |v' - v| <= expm1(γ/2) * (1 + v)), zero is
   exact, and re-encoding a decoded row reproduces it losslessly — the
   [encode (decode k) = k] contract snapshots rely on. *)
let prop_quant_roundtrip =
  QCheck.Test.make ~name:"quant round trip: bounded error, stable codes"
    ~count:300 quant_case (fun (bits, row) ->
      let q = { Rowstore.bits; vmax = 1e9 } in
      let stride = Array.length row in
      let t = Rowstore.create ~quant:q ~stride () in
      let off = Rowstore.ensure t 7 in
      Rowstore.encode_row t off row;
      let once = Array.make stride Float.nan in
      Rowstore.decode_row t off once;
      let bound = Rowstore.quant_rel_error_bound q in
      let within = ref true in
      Array.iteri
        (fun i v ->
          let v' = once.(i) in
          if v <= 0. then (if v' <> 0. then within := false)
          else if Float.abs (v' -. v) > (bound *. (1. +. v)) +. 1e-9 then
            within := false)
        row;
      Rowstore.encode_row t off once;
      let twice = Array.make stride Float.nan in
      Rowstore.decode_row t off twice;
      !within && once = twice)

(* {2 Snapshot rebuild ([of_loaded])} *)

let test_of_loaded_replays_order () =
  let stride = 3 in
  let peers = [| 9; 2; 5 |] in
  let stamps = [| 4; 0; 7 |] in
  let rows = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. |] in
  let t = Rowstore.of_loaded ~stride ~peers ~stamps (`Floats rows) in
  Alcotest.(check int) "count" 3 (Rowstore.count t);
  Alcotest.(check (array int)) "iteration peers" peers
    (Rowstore.iteration_peers t);
  let visited = ref [] in
  Rowstore.iter t (fun peer off ->
      let dst = Array.make stride Float.nan in
      Rowstore.decode_row t off dst;
      visited := (peer, dst) :: !visited);
  (match List.rev !visited with
  | [ (9, a); (2, b); (5, c) ] ->
      Alcotest.check exact "row 9" [| 1.; 2.; 3. |] a;
      Alcotest.check exact "row 2" [| 4.; 5.; 6. |] b;
      Alcotest.check exact "row 5" [| 7.; 8.; 9. |] c
  | _ -> Alcotest.fail "iter did not replay the saved order");
  Alcotest.(check int) "stamp carried" 7 (Rowstore.stamp t 5);
  Alcotest.(check int) "zero stamp carried" 0 (Rowstore.stamp t 2)

let test_of_loaded_rejects_bad_sections () =
  let rejects name f =
    match f () with
    | _ -> Alcotest.fail (name ^ ": accepted")
    | exception Invalid_argument _ -> ()
  in
  rejects "payload length mismatch" (fun () ->
      Rowstore.of_loaded ~stride:3 ~peers:[| 1; 2 |] ~stamps:[| 0; 0 |]
        (`Floats (Array.make 5 0.)));
  rejects "duplicate peers" (fun () ->
      Rowstore.of_loaded ~stride:2 ~peers:[| 4; 4 |] ~stamps:[| 0; 0 |]
        (`Floats (Array.make 4 0.)));
  rejects "stamps length mismatch" (fun () ->
      Rowstore.of_loaded ~stride:2 ~peers:[| 1; 2 |] ~stamps:[| 0 |]
        (`Floats (Array.make 4 0.)));
  rejects "codes without quantizer" (fun () ->
      Rowstore.of_loaded ~stride:2 ~peers:[| 1 |] ~stamps:[| 0 |]
        (`Codes (Bytes.create 2)))

let suite =
  ( "store",
    [
      Alcotest.test_case "rowstore basics" `Quick test_rowstore_basics;
      Alcotest.test_case "rowstore recycles zeroed slots" `Quick
        test_rowstore_recycles_zeroed;
      Alcotest.test_case "rowstore growth honors degree hint" `Quick
        test_rowstore_growth_honors_hint;
      Alcotest.test_case "rowstore growth preserves rows" `Quick
        test_rowstore_growth_preserves_rows;
      Alcotest.test_case "rowstore copy is independent" `Quick
        test_rowstore_copy_is_independent;
      Alcotest.test_case "slice bounds checked" `Quick test_slice_bounds;
      Alcotest.test_case "row roundtrip" `Quick test_row_roundtrip;
      Alcotest.test_case "of_loaded replays saved order" `Quick
        test_of_loaded_replays_order;
      Alcotest.test_case "of_loaded rejects bad sections" `Quick
        test_of_loaded_rejects_bad_sections;
      QCheck_alcotest.to_alcotest prop_quant_roundtrip;
      QCheck_alcotest.to_alcotest prop_add_slice;
      QCheck_alcotest.to_alcotest prop_sub_clamp_slice;
      QCheck_alcotest.to_alcotest prop_scale_slice;
      QCheck_alcotest.to_alcotest prop_decay_slice;
      QCheck_alcotest.to_alcotest prop_cri_matches_reference;
      QCheck_alcotest.to_alcotest prop_eri_matches_reference;
      QCheck_alcotest.to_alcotest prop_copy_matches_original;
    ] )
