(* Compound routing index, validated against Figures 3-5 of the paper.
   Topic order: databases, networks, theory, languages. *)

open Ri_content
open Ri_core

let s total by = Summary.of_counts ~total ~by_topic:by

(* Node A of the running example. *)
let local_a = s 300 [| 30; 80; 0; 10 |]
let row_b = s 100 [| 20; 0; 10; 30 |]
let row_c = s 1000 [| 0; 300; 0; 50 |]
let row_d = s 300 [| 140; 0; 140; 225 |]

let make_a () =
  let t = Cri.create ~width:4 ~local:local_a () in
  Cri.set_row t ~peer:1 row_b;
  Cri.set_row t ~peer:2 row_c;
  t

let test_create_validation () =
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Cri.create: summary width mismatch") (fun () ->
      ignore (Cri.create ~width:3 ~local:local_a ()));
  Alcotest.check_raises "bad width"
    (Invalid_argument "Cri.create: width must be positive") (fun () ->
      ignore (Cri.create ~width:0 ~local:(Summary.zero ~topics:0) ()))

let test_rows () =
  let t = make_a () in
  Alcotest.(check (list int)) "peers" [ 1; 2 ] (Cri.peers t);
  (match Cri.row t ~peer:1 with
  | Some r -> Alcotest.(check bool) "row B" true (Summary.approx_equal r row_b)
  | None -> Alcotest.fail "missing row");
  Alcotest.(check bool) "absent row" true (Cri.row t ~peer:9 = None);
  Cri.remove_row t ~peer:1;
  Alcotest.(check (list int)) "after removal" [ 2 ] (Cri.peers t)

let test_local_update () =
  let t = make_a () in
  Alcotest.(check bool) "local" true (Summary.approx_equal (Cri.local t) local_a);
  let new_local = s 301 [| 30; 80; 0; 11 |] in
  Cri.set_local t new_local;
  Alcotest.(check bool) "replaced" true
    (Summary.approx_equal (Cri.local t) new_local)

let test_figure5_export () =
  (* "A sends D a vector saying that it has access to 1400 documents
     (300 + 100 + 1000), of which 50 are on databases, 380 on networks,
     10 on theory, and 90 on languages" (Section 4.2). *)
  let t = make_a () in
  let e = Cri.export t ~exclude:None in
  Alcotest.(check (float 1e-9)) "total" 1400. e.Summary.total;
  Alcotest.(check (float 1e-9)) "databases" 50. (Summary.get e 0);
  Alcotest.(check (float 1e-9)) "networks" 380. (Summary.get e 1);
  Alcotest.(check (float 1e-9)) "theory" 10. (Summary.get e 2);
  Alcotest.(check (float 1e-9)) "languages" 90. (Summary.get e 3)

let test_export_excludes_target_row () =
  let t = make_a () in
  Cri.set_row t ~peer:3 row_d;
  let e = Cri.export t ~exclude:(Some 3) in
  (* Same as the Figure 5 vector: D's own row must not echo back. *)
  Alcotest.(check (float 1e-9)) "total excludes D" 1400. e.Summary.total;
  let unknown = Cri.export t ~exclude:(Some 42) in
  Alcotest.(check (float 1e-9)) "unknown peer = full aggregate" 1700.
    unknown.Summary.total

let test_export_all_matches_pointwise () =
  let t = make_a () in
  Cri.set_row t ~peer:3 row_d;
  List.iter
    (fun (peer, batch) ->
      let single = Cri.export t ~exclude:(Some peer) in
      Alcotest.(check bool)
        (Printf.sprintf "export_all peer %d" peer)
        true
        (Summary.approx_equal ~eps:1e-6 batch single))
    (Cri.export_all t)

let test_goodness () =
  let t = make_a () in
  Cri.set_row t ~peer:3 (s 200 [| 100; 0; 100; 150 |]);
  (* Figure 3's worked estimates for "databases AND languages". *)
  Alcotest.(check (float 1e-9)) "B" 6. (Cri.goodness t ~peer:1 ~query:[ 0; 3 ]);
  Alcotest.(check (float 1e-9)) "C" 0. (Cri.goodness t ~peer:2 ~query:[ 0; 3 ]);
  Alcotest.(check (float 1e-9)) "D" 75. (Cri.goodness t ~peer:3 ~query:[ 0; 3 ]);
  Alcotest.(check (float 1e-9)) "unknown peer" 0.
    (Cri.goodness t ~peer:9 ~query:[ 0 ])

let prop_export_is_local_plus_rows =
  QCheck.Test.make ~name:"export equals local plus kept rows" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 6) (float_range 0. 100.))
    (fun totals ->
      let t = Cri.create ~width:1 ~local:(Summary.make ~total:5. ~by_topic:[| 5. |]) () in
      List.iteri
        (fun i v -> Cri.set_row t ~peer:i (Summary.make ~total:v ~by_topic:[| v |]))
        totals;
      let e = Cri.export t ~exclude:None in
      Float.abs (e.Summary.total -. (5. +. List.fold_left ( +. ) 0. totals))
      < 1e-6)

let suite =
  ( "cri",
    [
      Alcotest.test_case "validation" `Quick test_create_validation;
      Alcotest.test_case "rows" `Quick test_rows;
      Alcotest.test_case "local update" `Quick test_local_update;
      Alcotest.test_case "figure 5 export (1400/50/380/10/90)" `Quick test_figure5_export;
      Alcotest.test_case "export excludes target" `Quick test_export_excludes_target_row;
      Alcotest.test_case "export_all pointwise" `Quick test_export_all_matches_pointwise;
      Alcotest.test_case "goodness (6/0/75)" `Quick test_goodness;
      QCheck_alcotest.to_alcotest prop_export_is_local_plus_rows;
    ] )
