(* Churn: connections and disconnections per Sections 4.2-4.3,
   including the paper's Figure 5 creation example. *)

open Ri_content
open Ri_core
open Ri_topology
open Ri_p2p

let s total by = Summary.of_counts ~total ~by_topic:by

(* The Figure 5 scenario: A-B, A-C on one side and D-I, D-J on the
   other, initially disconnected (A=0, B=1, C=2, D=3, I=4, J=5). *)
let locals =
  [|
    s 300 [| 30; 80; 0; 10 |];
    s 100 [| 20; 0; 10; 30 |];
    s 1000 [| 0; 300; 0; 50 |];
    s 200 [| 100; 0; 100; 150 |];
    s 50 [| 25; 0; 15; 50 |];
    s 50 [| 15; 0; 25; 25 |];
  |]

let figure5_net () =
  let graph = Graph.of_edges ~n:6 [ (0, 1); (0, 2); (3, 4); (3, 5) ] in
  let content =
    {
      Network.summary = (fun v -> locals.(v));
      count_matching = (fun _ _ -> 0);
    }
  in
  Network.create ~graph ~content ~scheme:Scheme.Cri_kind ~min_update:1e-9
    ~update_distance_floor:1e-9 ()

let vector_row net v peer =
  match Scheme.row (Network.ri net v) ~peer with
  | Some (Scheme.Vector r) -> r
  | _ -> Alcotest.fail (Printf.sprintf "missing row %d at %d" peer v)

let check_row msg net v peer (total, by_topic) =
  Alcotest.(check bool) msg true
    (Summary.approx_equal ~eps:1e-6
       (vector_row net v peer)
       (Summary.of_counts ~total ~by_topic))

let test_figure5_connect () =
  (* "When the A-D connection is established, node A ... sends D a
     vector saying that it has access to 1400 documents, of which 50 are
     on databases, 380 on networks, 10 on theory, and 90 on languages."
     D then updates I and J. *)
  let net = figure5_net () in
  let counters = Message.create () in
  Churn.connect net 0 3 ~counters;
  Alcotest.(check bool) "link exists" true (Network.has_link net 0 3);
  check_row "D's row for A (Figure 5)" net 3 0 (1400, [| 50; 380; 10; 90 |]);
  check_row "A's row for D" net 0 3 (300, [| 140; 0; 140; 225 |]);
  (* The news reaches the rest: I's row for D covers A's side too. *)
  check_row "I's row for D" net 4 3 (1650, [| 165; 380; 135; 265 |]);
  check_row "B's row for A" net 1 0 (1600, [| 170; 380; 140; 285 |]);
  (* Traffic: 2 initial exchanges plus at least one update per remaining
     node. *)
  Alcotest.(check bool) "counted messages" true
    (counters.Message.update_messages >= 6)

let test_connect_then_query_crosses () =
  let net = figure5_net () in
  let counters = Message.create () in
  Churn.connect net 0 3 ~counters;
  (* A query at B for "languages" can now route across to D's side. *)
  let content_matches = [| 0; 0; 0; 0; 3; 0 |] in
  (* Rebuild the network with ground truth on I; reuse the same shape. *)
  let graph = Graph.of_edges ~n:6 [ (0, 1); (0, 2); (3, 4); (3, 5) ] in
  let content =
    {
      Network.summary = (fun v -> locals.(v));
      count_matching = (fun v _ -> content_matches.(v));
    }
  in
  let net = Network.create ~graph ~content ~scheme:Scheme.Cri_kind () in
  Churn.connect net 0 3 ~counters:(Message.create ());
  let q = Workload.query ~topics:[ 0 ] ~stop:3 in
  let o = Query.run net ~origin:1 ~query:q ~forwarding:Query.Ri_guided in
  Alcotest.(check bool) "found across the new link" true (o.Query.found >= 3)

let test_connect_validation () =
  let net = figure5_net () in
  Alcotest.check_raises "existing link" (Invalid_argument "Network.add_link: link exists")
    (fun () -> Churn.connect net 0 1 ~counters:(Message.create ()))

let test_disconnect_link () =
  let net = figure5_net () in
  let counters = Message.create () in
  Churn.connect net 0 3 ~counters;
  Message.reset counters;
  Churn.disconnect_link net 0 3 ~counters;
  Alcotest.(check bool) "link gone" false (Network.has_link net 0 3);
  Alcotest.(check bool) "rows dropped" true
    (Scheme.row (Network.ri net 0) ~peer:3 = None
    && Scheme.row (Network.ri net 3) ~peer:0 = None);
  (* B hears that A's reach shrank back to 1400 - 300(D side). *)
  check_row "B's row for A shrinks" net 1 0 (1300, [| 30; 380; 0; 60 |]);
  Alcotest.(check bool) "traffic counted" true (counters.Message.update_messages > 0)

let test_disconnect_node () =
  (* "let us suppose that I disconnects ... Node D detects the
     disconnection and updates its RI by removing the row for I ...
     without I's participation." *)
  let net = figure5_net () in
  let counters = Message.create () in
  let former = Churn.disconnect_node net 4 ~counters in
  Alcotest.(check (list int)) "former neighbors" [ 3 ] former;
  Alcotest.(check int) "isolated" 0 (Network.degree net 4);
  Alcotest.(check bool) "D forgot I" true
    (Scheme.row (Network.ri net 3) ~peer:4 = None);
  (* J learns that D's side shrank by I's 50 documents. *)
  check_row "J's row for D" net 5 3 (200, [| 100; 0; 100; 150 |])

let test_rejoin_after_disconnect () =
  let net = figure5_net () in
  let counters = Message.create () in
  ignore (Churn.disconnect_node net 4 ~counters);
  Churn.connect net 4 0 ~counters;
  (* I reattached under A: A's side now sees I's documents again. *)
  check_row "B's row for A includes I" net 1 0 (1350, [| 55; 380; 15; 110 |])

let test_no_ri_churn_is_silent () =
  let graph = Graph.of_edges ~n:3 [ (0, 1) ] in
  let content =
    {
      Network.summary = (fun _ -> Summary.zero ~topics:1);
      count_matching = (fun _ _ -> 0);
    }
  in
  let net = Network.create ~graph ~content () in
  let counters = Message.create () in
  Churn.connect net 1 2 ~counters;
  ignore (Churn.disconnect_node net 2 ~counters);
  Alcotest.(check int) "no index traffic" 0 counters.Message.update_messages

let test_powerlaw_hub_removal () =
  (* Cyclic topology: a power-law overlay loses its highest-degree hub
     without a goodbye from anyone but the ex-neighbors.  The rows must
     stay structurally sound — no dangling row for the hub anywhere, no
     row at any node for a non-neighbor, finite non-negative counts —
     even though cyclic convergence is only approximate. *)
  let n = 120 in
  let rng = Ri_util.Prng.create 99 in
  let graph = Power_law.generate rng ~n ~exponent:(-2.2088) () in
  Alcotest.(check bool) "topology is cyclic" true
    (Graph.edge_count graph >= n);
  let docs = Array.init n (fun i -> (i * 13 mod 9) + 1) in
  let content =
    {
      Network.summary =
        (fun v -> Summary.of_counts ~total:docs.(v) ~by_topic:[| docs.(v) |]);
      count_matching = (fun v _ -> docs.(v));
    }
  in
  let net =
    Network.create ~graph ~content ~scheme:Scheme.Cri_kind
      ~cycle_policy:Network.Detect_recover ()
  in
  let hub = ref 0 in
  for v = 1 to n - 1 do
    if Network.degree net v > Network.degree net !hub then hub := v
  done;
  let hub = !hub in
  Alcotest.(check bool) "removed a genuine hub" true
    (Network.degree net hub >= 4);
  let former = Churn.disconnect_node net hub ~counters:(Message.create ()) in
  Alcotest.(check int) "hub isolated" 0 (Network.degree net hub);
  Alcotest.(check int) "hub's own rows gone" 0
    (List.length (Scheme.peers (Network.ri net hub)));
  List.iter
    (fun u ->
      Alcotest.(check bool)
        (Printf.sprintf "ex-neighbor %d dropped its hub row" u)
        true
        (Scheme.row (Network.ri net u) ~peer:hub = None))
    former;
  for v = 0 to n - 1 do
    let neighbors = Array.to_list (Network.neighbors net v) in
    List.iter
      (fun peer ->
        Alcotest.(check bool)
          (Printf.sprintf "row %d->%d matches a live link" v peer)
          true
          (List.mem peer neighbors);
        match Scheme.row (Network.ri net v) ~peer with
        | Some (Scheme.Vector s) ->
            Alcotest.(check bool)
              (Printf.sprintf "row %d->%d sane" v peer)
              true
              (Float.is_finite s.Summary.total
              && s.Summary.total >= -1e-6
              && Array.for_all
                   (fun x -> Float.is_finite x && x >= -1e-6)
                   s.Summary.by_topic)
        | Some _ | None ->
            Alcotest.fail (Printf.sprintf "missing row %d->%d" v peer))
      (Scheme.peers (Network.ri net v))
  done

let suite =
  ( "churn",
    [
      Alcotest.test_case "figure 5 connect" `Quick test_figure5_connect;
      Alcotest.test_case "query crosses new link" `Quick test_connect_then_query_crosses;
      Alcotest.test_case "connect validation" `Quick test_connect_validation;
      Alcotest.test_case "disconnect link" `Quick test_disconnect_link;
      Alcotest.test_case "disconnect node" `Quick test_disconnect_node;
      Alcotest.test_case "rejoin" `Quick test_rejoin_after_disconnect;
      Alcotest.test_case "no-RI churn silent" `Quick test_no_ri_churn_is_silent;
      Alcotest.test_case "power-law hub removal" `Quick test_powerlaw_hub_removal;
    ] )
