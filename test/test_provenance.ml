(* Provenance plane: decision-record semantics against the oracle,
   update-wave lineage stamps, the explain/summarize analyzers, the
   report dashboard ingesters, and the bench regression gate. *)

open Ri_util
open Ri_content
open Ri_core
open Ri_topology
open Ri_p2p
open Ri_obs
open Ri_sim

(* ------------------------------------------------------------------ *)
(* Update-wave lineage stamps.                                         *)

let path_net ?(n = 4) () =
  let graph = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let content =
    {
      Network.summary =
        (fun _ -> Summary.of_counts ~total:100 ~by_topic:[| 100 |]);
      count_matching = (fun _ _ -> 0);
    }
  in
  Network.create ~graph ~content ~scheme:Scheme.Cri_kind ~min_update:0.01 ()

let bump net origin docs =
  let counters = Message.create () in
  let base = Network.raw_local_summary net origin in
  let summary =
    Summary.make
      ~total:(base.Summary.total +. docs)
      ~by_topic:[| Summary.get base 0 +. docs |]
  in
  Update.local_change net ~origin ~summary ~counters

let test_wave_stamps_rows () =
  let net = path_net () in
  (* Build-time rows carry wave 0: nothing has been updated yet. *)
  Alcotest.(check int) "built rows unstamped" 0
    (Scheme.row_stamp (Network.ri net 3) ~peer:2);
  bump net 0 50.;
  (* The wave from node 0 rewrote node 3's row for its upstream peer 2. *)
  Alcotest.(check int) "first wave stamps" 1
    (Scheme.row_stamp (Network.ri net 3) ~peer:2);
  bump net 0 25.;
  Alcotest.(check int) "second wave restamps" 2
    (Scheme.row_stamp (Network.ri net 3) ~peer:2);
  (* Node 3 is a leaf: node 2's row for it describes 3's own documents,
     which no wave from 0 ever changed. *)
  Alcotest.(check int) "untouched row keeps its stamp" 0
    (Scheme.row_stamp (Network.ri net 2) ~peer:3)

let test_wave_counter_per_instance () =
  let net = path_net () in
  bump net 0 50.;
  let clone = Network.copy net in
  bump clone 0 10.;
  bump net 0 10.;
  (* Copies count independently, so parallel trials on cloned networks
     stamp identical ids regardless of interleaving. *)
  Alcotest.(check int) "clone continues from the copied counter" 2
    (Scheme.row_stamp (Network.ri clone 3) ~peer:2);
  Alcotest.(check int) "original unaffected by the clone" 2
    (Scheme.row_stamp (Network.ri net 3) ~peer:2)

(* ------------------------------------------------------------------ *)
(* Decision-record semantics.                                          *)

let small = Config.scaled Config.base ~num_nodes:300

let records_for cfg ~trials =
  Decision.clear ();
  Decision.start ();
  Fun.protect ~finally:Decision.stop (fun () ->
      Decision.next_unit ();
      for trial = 0 to trials - 1 do
        ignore (Trial.run_query cfg ~trial)
      done);
  let r = Decision.records () in
  Decision.clear ();
  r

let test_decide_invariants () =
  let cfg = Config.with_search small (Config.Ri Config.cri) in
  let walks = records_for cfg ~trials:3 in
  Alcotest.(check bool) "has walks" true (walks <> []);
  List.iter
    (fun ((_, _), records) ->
      Alcotest.(check bool) "walk non-empty" true (records <> []);
      (match List.rev records with
      | Decision.Stop s :: _ ->
          Alcotest.(check bool) "stop reason known" true
            (List.mem s.reason [ "satisfied"; "exhausted"; "budget" ])
      | _ -> Alcotest.fail "walk does not end in a stop record");
      List.iter
        (function
          | Decision.Decide d when d.candidates <> [] ->
              let n = List.length d.candidates in
              Alcotest.(check bool) "oracle_rank in range" true
                (d.oracle_rank >= 0 && d.oracle_rank < n);
              let peers = List.map (fun c -> c.Decision.peer) d.candidates in
              Alcotest.(check bool) "oracle_best is a candidate" true
                (List.mem d.oracle_best peers);
              let best_truth =
                List.fold_left
                  (fun acc c -> max acc c.Decision.truth)
                  0 d.candidates
              in
              let chosen =
                List.nth d.candidates d.oracle_rank
              in
              Alcotest.(check int) "ranked candidate holds the best truth"
                best_truth chosen.Decision.truth;
              Alcotest.(check int) "regret = best truth - first truth"
                (best_truth - (List.hd d.candidates).Decision.truth)
                d.regret;
              Alcotest.(check bool) "regret non-negative" true (d.regret >= 0)
          | _ -> ())
        records)
    walks

(* On a clean converged CRI tree the index is exact, so the first-ranked
   candidate always carries as many reachable results as the oracle's
   pick: zero count regret at every decision point. *)
let test_cri_tree_zero_regret () =
  let cfg = Config.with_search small (Config.Ri Config.cri) in
  let walks = records_for cfg ~trials:4 in
  List.iter
    (fun (_, records) ->
      List.iter
        (function
          | Decision.Decide d when d.candidates <> [] ->
              Alcotest.(check int) "exact CRI never regrets" 0 d.regret
          | _ -> ())
        records)
    walks

(* ------------------------------------------------------------------ *)
(* Explain.                                                            *)

let test_summarize_counts () =
  let records =
    [
      Decision.Decide
        {
          node = 0;
          from = -1;
          scheme = "CRI";
          candidates =
            [
              { Decision.peer = 1; goodness = 2.; truth = 1; stale = false; wave = 0 };
              { Decision.peer = 2; goodness = 1.; truth = 3; stale = true; wave = 1 };
            ];
          oracle_best = 2;
          oracle_rank = 1;
          regret = 2;
          stale_demoted = 1;
        };
      Decision.Follow { node = 0; target = 1; rank = 0 };
      Decision.Backtrack { node = 1; target = 0 };
      Decision.Timeout { node = 0; target = 2; attempt = 0 };
      Decision.Stop
        { reason = "exhausted"; found = 0; forwards = 2; returns = 1; visited = 2 };
    ]
  in
  let s = Ri_experiments.Explain.summarize records in
  Alcotest.(check int) "decisions" 1 s.Ri_experiments.Explain.decisions;
  Alcotest.(check int) "follows" 1 s.follows;
  Alcotest.(check int) "backtracks" 1 s.backtracks;
  Alcotest.(check int) "timeouts" 1 s.timeouts;
  Alcotest.(check int) "stale demoted" 1 s.stale_demoted;
  Alcotest.(check (float 1e-9)) "mean regret" 2. s.mean_regret;
  Alcotest.(check (float 1e-9)) "mean oracle rank" 1. s.mean_oracle_rank;
  Alcotest.(check (float 1e-9)) "agreement" 0. s.oracle_agreement;
  let text = Ri_experiments.Explain.render [ ((0, 0), records) ] in
  List.iter
    (fun affix ->
      Alcotest.(check bool) affix true
        (Astring.String.is_infix ~affix text))
    [
      "== unit 0 trial 0 ==";
      "decide @0 (origin) [CRI]";
      "oracle best 2 at rank 1, regret 2, 1 stale demoted";
      "STALE";
      "<- oracle best";
      "follow 0 -> 1 (choice #0)";
      "backtrack 1 -> 0";
      "timeout 0 -> 2 (attempt 0)";
      "stop: exhausted";
    ]

let test_explain_end_to_end () =
  let cfg = Config.with_search small (Config.Ri Config.cri) in
  let walks = records_for cfg ~trials:1 in
  let text = Ri_experiments.Explain.render walks in
  Alcotest.(check bool) "renders a walk" true
    (Astring.String.is_infix ~affix:"== unit" text);
  Alcotest.(check bool) "renders a summary" true
    (Astring.String.is_infix ~affix:"oracle agreement" text);
  Alcotest.(check bool) "empty render says so" true
    (Astring.String.is_infix ~affix:"no decision records"
       (Ri_experiments.Explain.render []))

(* ------------------------------------------------------------------ *)
(* Dashboard.                                                          *)

let test_dashboard_of_decisions () =
  let cfg = Config.with_search small (Config.Ri Config.cri) in
  Decision.clear ();
  Decision.start ();
  Fun.protect ~finally:Decision.stop (fun () ->
      Decision.next_unit ();
      ignore (Trial.run_query cfg ~trial:0));
  let jsonl = Decision.render_jsonl () in
  Decision.clear ();
  match Ri_experiments.Dashboard.of_decisions jsonl with
  | None -> Alcotest.fail "no table from live decision output"
  | Some t ->
      Alcotest.(check bool) "one scheme row" true (List.length t.rows = 1);
      Alcotest.(check string) "scheme column" "CRI"
        (List.hd (List.hd t.rows));
      Alcotest.(check bool) "garbage gives no table" true
        (Ri_experiments.Dashboard.of_decisions "not json\n" = None)

let test_dashboard_renderers () =
  let module D = Ri_experiments.Dashboard in
  let t =
    {
      D.title = "T";
      header = [ "a"; "b" ];
      rows = [ [ "1"; "x<y" ] ];
      notes = [ "a note" ];
    }
  in
  let md = D.render_markdown ~title:"R" [ t ] in
  List.iter
    (fun affix ->
      Alcotest.(check bool) affix true (Astring.String.is_infix ~affix md))
    [ "# R"; "## T"; "| a | b |"; "| 1 | x<y |"; "a note" ];
  let html = D.render_html ~title:"R" [ t ] in
  Alcotest.(check bool) "html escapes cells" true
    (Astring.String.is_infix ~affix:"x&lt;y" html);
  Alcotest.(check bool) "html is a full page" true
    (Astring.String.is_prefix ~affix:"<!DOCTYPE html>" html);
  Alcotest.(check bool) "empty report says so" true
    (Astring.String.is_infix ~affix:"No inputs given"
       (D.render_markdown ~title:"R" []))

let test_dashboard_of_bench () =
  let j =
    Json.parse_exn
      {|{"meta": {"git_commit": "abc"},
         "config": {"nodes": 2000, "jobs": 4},
         "micro_ns_per_run": {"m1": 100.5, "m2": 200.0},
         "figures_wall_clock_s": {"fig13": 1.25}}|}
  in
  let tables = Ri_experiments.Dashboard.of_bench j in
  Alcotest.(check bool) "has tables" true (tables <> []);
  let all_rows = List.concat_map (fun t -> t.Ri_experiments.Dashboard.rows) tables in
  Alcotest.(check bool) "micro row present" true
    (List.exists (fun r -> List.mem "m1" r) all_rows);
  Alcotest.(check bool) "figure row present" true
    (List.exists (fun r -> List.mem "fig13" r) all_rows);
  let notes = List.concat_map (fun t -> t.Ri_experiments.Dashboard.notes) tables in
  Alcotest.(check bool) "meta surfaced as a note" true
    (List.exists (fun n -> Astring.String.is_infix ~affix:"abc" n) notes)

(* ------------------------------------------------------------------ *)
(* Regression gate.                                                    *)

let baseline_json =
  {|{"micro_ns_per_run": {"a": 100.0, "b": 200.0, "c": 300.0}}|}

let results_json =
  (* a: +10% (within the default 15%), b: +30% (regressed), c missing. *)
  {|{"micro_ns_per_run": {"a": 110.0, "b": 260.0, "d": 5.0}}|}

let test_regress_flags_regression () =
  let module R = Ri_experiments.Regress in
  match R.compare ~baseline:baseline_json ~results:results_json () with
  | Error e -> Alcotest.failf "gate errored: %s" e
  | Ok o ->
      Alcotest.(check bool) "regression detected" true (R.any_regressed o);
      let find n = List.find (fun v -> v.R.name = n) o.R.verdicts in
      Alcotest.(check bool) "a within threshold" false (find "a").R.regressed;
      Alcotest.(check bool) "b over threshold" true (find "b").R.regressed;
      Alcotest.(check (list string)) "missing micro reported" [ "c" ]
        o.R.missing;
      Alcotest.(check bool) "new-only micro ignored" true
        (List.for_all (fun v -> v.R.name <> "d") o.R.verdicts);
      let text = R.render o in
      Alcotest.(check bool) "render marks the regression" true
        (Astring.String.is_infix ~affix:"REGRESSED" text);
      Alcotest.(check bool) "render fails overall" true
        (Astring.String.is_infix ~affix:"FAIL" text)

let test_regress_threshold_override () =
  let module R = Ri_experiments.Regress in
  match
    R.compare ~threshold:50. ~baseline:baseline_json ~results:results_json ()
  with
  | Error e -> Alcotest.failf "gate errored: %s" e
  | Ok o ->
      Alcotest.(check bool) "+30% passes a 50% threshold" false
        (R.any_regressed o)

let test_regress_identical_ok () =
  let module R = Ri_experiments.Regress in
  match R.compare ~baseline:baseline_json ~results:baseline_json () with
  | Error e -> Alcotest.failf "gate errored: %s" e
  | Ok o ->
      Alcotest.(check bool) "identical results pass" false (R.any_regressed o);
      Alcotest.(check bool) "nothing missing" true (o.R.missing = [])

let test_regress_rejects_bad_input () =
  let module R = Ri_experiments.Regress in
  (match R.compare ~baseline:"{}" ~results:results_json () with
  | Error e ->
      Alcotest.(check bool) "explains the missing section" true
        (Astring.String.is_infix ~affix:"micro_ns_per_run" e)
  | Ok _ -> Alcotest.fail "accepted a baseline without micros");
  match R.compare ~baseline:"not json" ~results:results_json () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unparseable baseline"

let suite =
  ( "provenance",
    [
      Alcotest.test_case "waves stamp rewritten rows" `Quick
        test_wave_stamps_rows;
      Alcotest.test_case "wave counter is per-instance" `Quick
        test_wave_counter_per_instance;
      Alcotest.test_case "decide record invariants" `Quick
        test_decide_invariants;
      Alcotest.test_case "exact CRI has zero count regret" `Quick
        test_cri_tree_zero_regret;
      Alcotest.test_case "summarize counts and render" `Quick
        test_summarize_counts;
      Alcotest.test_case "explain end to end" `Quick test_explain_end_to_end;
      Alcotest.test_case "dashboard ingests decisions" `Quick
        test_dashboard_of_decisions;
      Alcotest.test_case "dashboard renderers" `Quick test_dashboard_renderers;
      Alcotest.test_case "dashboard ingests bench json" `Quick
        test_dashboard_of_bench;
      Alcotest.test_case "regress flags a regression" `Quick
        test_regress_flags_regression;
      Alcotest.test_case "regress threshold override" `Quick
        test_regress_threshold_override;
      Alcotest.test_case "regress passes identical results" `Quick
        test_regress_identical_ok;
      Alcotest.test_case "regress rejects bad input" `Quick
        test_regress_rejects_bad_input;
    ] )
