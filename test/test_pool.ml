(* Domain pool, env parsing, and the parallel-execution guarantees the
   runner and setup cache build on: chunked scheduling covers every
   index exactly once, exceptions propagate, a pool survives reuse,
   parallel runs are bit-identical to sequential ones, and cached trial
   setups reproduce fresh builds exactly. *)

open Ri_util
open Ri_sim

(* ------------------------------------------------------------------ *)
(* Env.                                                                *)

let with_env name value f =
  let old = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv name (match old with Some v -> v | None -> ""))
    f

let test_env_int () =
  with_env "RI_TEST_ENV" "17" (fun () ->
      Alcotest.(check int) "set" 17 (Env.int "RI_TEST_ENV" 3));
  with_env "RI_TEST_ENV" "" (fun () ->
      Alcotest.(check int) "unset/empty falls back" 3 (Env.int "RI_TEST_ENV" 3));
  with_env "RI_TEST_ENV" "junk" (fun () ->
      Alcotest.(check int) "junk falls back" 3 (Env.int "RI_TEST_ENV" 3));
  with_env "RI_TEST_ENV" "0" (fun () ->
      Alcotest.(check int) "below default floor" 3 (Env.int "RI_TEST_ENV" 3);
      Alcotest.(check int) "floor 0 admits it" 0 (Env.int ~min:0 "RI_TEST_ENV" 3))

let test_env_float () =
  with_env "RI_TEST_ENV" "0.25" (fun () ->
      Alcotest.(check (float 1e-9)) "set" 0.25 (Env.float "RI_TEST_ENV" 1.));
  with_env "RI_TEST_ENV" "-1.0" (fun () ->
      Alcotest.(check (float 1e-9)) "negative rejected" 1.
        (Env.float "RI_TEST_ENV" 1.))

(* ------------------------------------------------------------------ *)
(* Pool mechanics.                                                     *)

let test_map_covers_all_indices () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          List.iter
            (fun n ->
              let out = Pool.map_chunked pool ~n (fun i -> i * i) in
              Alcotest.(check int)
                (Printf.sprintf "length jobs=%d n=%d" jobs n)
                n (Array.length out);
              Array.iteri
                (fun i v ->
                  Alcotest.(check int)
                    (Printf.sprintf "slot %d jobs=%d" i jobs)
                    (i * i) v)
                out)
            [ 0; 1; 2; 7; 64 ]))
    [ 1; 2; 4 ]

let test_chunk_shapes () =
  Pool.with_pool ~jobs:3 (fun pool ->
      List.iter
        (fun chunk ->
          let hits = Array.make 23 0 in
          let m = Mutex.create () in
          Pool.iter ~chunk pool ~n:23 (fun i ->
              Mutex.lock m;
              hits.(i) <- hits.(i) + 1;
              Mutex.unlock m);
          Array.iteri
            (fun i h ->
              Alcotest.(check int)
                (Printf.sprintf "index %d chunk %d ran once" i chunk)
                1 h)
            hits)
        [ 1; 2; 5; 23; 100 ])

exception Boom

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "raises at jobs=%d" jobs)
            Boom
            (fun () ->
              Pool.iter pool ~n:16 (fun i -> if i = 11 then raise Boom));
          (* The pool stays usable after a failed job. *)
          let out = Pool.map_chunked pool ~n:4 (fun i -> i + 1) in
          Alcotest.(check (array int)) "reusable after failure"
            [| 1; 2; 3; 4 |] out))
    [ 1; 3 ]

let test_pool_reuse () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check int) "width" 4 (Pool.jobs pool);
      for round = 1 to 50 do
        let out = Pool.map_chunked pool ~n:round (fun i -> i) in
        Alcotest.(check int)
          (Printf.sprintf "round %d" round)
          round (Array.length out)
      done)

let test_shutdown_rejects () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.iter: pool is shut down") (fun () ->
      Pool.iter pool ~n:1 (fun _ -> ()))

(* A submission from inside a running job must not wait on the pool (the
   outer wave can never finish while its domain blocks) — it runs
   inline, and [in_job] reports the nesting. *)
let test_nested_iter_inline () =
  Alcotest.(check bool) "not in a job outside" false (Pool.in_job ());
  Pool.with_pool ~jobs:3 (fun pool ->
      let sums = Array.make 8 0 in
      let nested = Array.make 8 false in
      Pool.iter pool ~n:8 (fun i ->
          nested.(i) <- Pool.in_job ();
          let acc = ref 0 in
          Pool.iter pool ~n:5 (fun j -> acc := !acc + j);
          sums.(i) <- !acc);
      Array.iteri
        (fun i ok ->
          Alcotest.(check bool) (Printf.sprintf "slot %d saw in_job" i) true ok;
          Alcotest.(check int) (Printf.sprintf "slot %d inner sum" i) 10 sums.(i))
        nested);
  Alcotest.(check bool) "flag restored" false (Pool.in_job ())

let test_label_stats_accounting () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Pool.iter ~label:"phase_a" pool ~n:10 (fun _ -> ());
      Pool.iter ~label:"phase_a" pool ~n:6 (fun _ -> ());
      Pool.iter ~label:"phase_b" pool ~n:4 (fun _ ->
          Pool.iter ~label:"phase_c" pool ~n:3 (fun _ -> ()));
      let stats = Pool.label_stats pool in
      Alcotest.(check (list string))
        "labels sorted" [ "phase_a"; "phase_b"; "phase_c" ]
        (List.map fst stats);
      let get name = List.assoc name stats in
      let a = get "phase_a" in
      Alcotest.(check int) "a waves" 2 a.Pool.l_waves;
      Alcotest.(check int) "a items" 16 a.Pool.l_items;
      let b = get "phase_b" in
      Alcotest.(check int) "b waves" 1 b.Pool.l_waves;
      Alcotest.(check int) "b items" 4 b.Pool.l_items;
      (* The nested phase_c waves ran inline, one per phase_b item. *)
      let c = get "phase_c" in
      Alcotest.(check int) "c waves" 4 c.Pool.l_waves;
      Alcotest.(check int) "c items" 12 c.Pool.l_items;
      Alcotest.(check int) "c all inline" 4 c.Pool.l_inline;
      Pool.reset_stats pool;
      Alcotest.(check int) "labels cleared" 0
        (List.length (Pool.label_stats pool)))

(* ------------------------------------------------------------------ *)
(* Parallel runs are bit-identical to sequential ones.                 *)

let check_summary_eq label (a : Stats.summary) (b : Stats.summary) =
  Alcotest.(check (float 0.)) (label ^ " mean") a.Stats.mean b.Stats.mean;
  Alcotest.(check (float 0.)) (label ^ " ci95") a.Stats.ci95 b.Stats.ci95;
  Alcotest.(check (float 0.)) (label ^ " stddev") a.Stats.stddev b.Stats.stddev;
  Alcotest.(check int) (label ^ " n") a.Stats.n b.Stats.n;
  Alcotest.(check (float 0.)) (label ^ " min") a.Stats.min b.Stats.min;
  Alcotest.(check (float 0.)) (label ^ " max") a.Stats.max b.Stats.max

let small = Config.scaled Config.base ~num_nodes:300

let test_parallel_matches_sequential () =
  let spec = { Runner.min_trials = 3; max_trials = 9; target_rel_error = 0.05 } in
  let run_with jobs cfg kind =
    Pool.with_pool ~jobs (fun pool ->
        Runner.run ~pool spec (fun ~trial ->
            match kind with
            | `Query -> float_of_int (Trial.run_query cfg ~trial).Trial.messages
            | `Update ->
                float_of_int
                  (Trial.run_update cfg ~trial).Trial.update_messages))
  in
  List.iter
    (fun (name, search, kind) ->
      let cfg = Config.with_search small search in
      let seq = run_with 1 cfg kind in
      let par = run_with 4 cfg kind in
      check_summary_eq name seq par)
    [
      ("eri query", Config.Ri (Config.eri small), `Query);
      ("cri update", Config.Ri Config.cri, `Update);
      ("no-ri query", Config.No_ri, `Query);
    ]

(* ------------------------------------------------------------------ *)
(* Setup cache: cached builds must be indistinguishable from fresh.    *)

let test_cache_matches_fresh () =
  let was = Setup_cache.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Setup_cache.set_enabled was;
      Setup_cache.clear ())
    (fun () ->
      (* Sweep cells that share the overlay and content draw: same
         (seed, trial) under different search schemes and stop
         conditions, as the experiments do. *)
      let cells =
        [
          Config.with_search small (Config.Ri (Config.eri small));
          Config.with_search small (Config.Ri Config.cri);
          Config.with_search
            { small with Config.stop_condition = 50 }
            (Config.Ri Config.cri);
          Config.with_search
            { small with Config.compression_ratio = 0.8 }
            (Config.Ri (Config.eri small));
        ]
      in
      let metrics enabled =
        Setup_cache.set_enabled enabled;
        Setup_cache.clear ();
        List.concat_map
          (fun cfg ->
            List.map
              (fun trial ->
                let q = Trial.run_query cfg ~trial in
                let u = Trial.run_update cfg ~trial in
                (q.Trial.messages, q.Trial.found, q.Trial.nodes_visited,
                 u.Trial.update_messages))
              [ 0; 1; 2 ])
          cells
      in
      let fresh = metrics false in
      let cached = metrics true in
      List.iteri
        (fun i ((qm, qf, qv, um), (qm', qf', qv', um')) ->
          let lbl fmt = Printf.sprintf "cell %d %s" i fmt in
          Alcotest.(check int) (lbl "messages") qm qm';
          Alcotest.(check int) (lbl "found") qf qf';
          Alcotest.(check int) (lbl "visited") qv qv';
          Alcotest.(check int) (lbl "update messages") um um')
        (List.combine fresh cached);
      (* The sweep above really exercised the cache: 4 cells x 3 trials
         with shared (seed, trial) keys must hit after the first cell. *)
      let s = Setup_cache.stats () in
      Alcotest.(check bool) "graph hits happened" true (s.Setup_cache.graph_hits > 0);
      Alcotest.(check bool) "content hits happened" true
        (s.Setup_cache.content_hits > 0))

(* ------------------------------------------------------------------ *)
(* Intra-trial parallelism: sharded phases are bit-identical to the    *)
(* sequential paths at every pool width.                               *)

(* One Int64 over every local summary and RI row of the network
   (FNV-style over IEEE bit patterns), in deterministic node/peer
   order: two networks fingerprint equal only if their entire routing
   state is bit-identical. *)
let net_fingerprint net =
  let open Ri_p2p in
  let h = ref 0xcbf29ce484222325L in
  let mix bits = h := Int64.mul (Int64.logxor !h bits) 0x100000001b3L in
  let mix_f v = mix (Int64.bits_of_float v) in
  let mix_summary s =
    mix_f s.Ri_content.Summary.total;
    Array.iter mix_f s.Ri_content.Summary.by_topic
  in
  for v = 0 to Network.size net - 1 do
    mix (Int64.of_int v);
    mix_summary (Network.local_summary net v);
    if Network.has_ri net then begin
      let ri = Network.ri net v in
      List.iter
        (fun peer ->
          mix (Int64.of_int peer);
          match Ri_core.Scheme.row ri ~peer with
          | None -> ()
          | Some (Ri_core.Scheme.Vector s) -> mix_summary s
          | Some (Ri_core.Scheme.Hop_vector rows) -> Array.iter mix_summary rows)
        (List.sort compare (Ri_core.Scheme.peers ri))
    end
  done;
  !h

let with_global_jobs jobs f =
  let prev = Pool.jobs (Pool.global ()) in
  Pool.set_global_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_global_jobs prev) f

(* Receiver-sharded update rounds (RI_WAVE_SHARD_MIN=1 makes every
   round eligible) must leave the network and the wave counters exactly
   where the sequential drain leaves them. *)
let test_sharded_wave_matches_sequential () =
  with_env "RI_WAVE_SHARD_MIN" "1" (fun () ->
      List.iter
        (fun (name, search) ->
          let cfg = Config.with_search small search in
          let run jobs =
            with_global_jobs jobs (fun () ->
                Setup_cache.clear ();
                let setup = Trial.build ~purpose:Trial.For_update cfg ~trial:2 in
                let m = Trial.run_update_on cfg setup in
                (m, net_fingerprint setup.Trial.network))
          in
          let m1, f1 = run 1 in
          let m4, f4 = run 4 in
          Alcotest.(check int)
            (name ^ " messages") m1.Trial.update_messages m4.Trial.update_messages;
          Alcotest.(check int)
            (name ^ " wire bytes") m1.Trial.update_wire_bytes
            m4.Trial.update_wire_bytes;
          Alcotest.(check int64) (name ^ " network state") f1 f4)
        [
          ("cri", Config.Ri Config.cri);
          ("eri", Config.Ri (Config.eri small));
        ])

(* Faulty waves carry a plan and must take the sequential path whatever
   the pool width: the whole faulty trial is width-invariant. *)
let test_faulty_trial_width_invariant () =
  with_env "RI_WAVE_SHARD_MIN" "1" (fun () ->
      let fault =
        {
          Ri_p2p.Fault.none with
          Ri_p2p.Fault.update_loss = 0.3;
          drift = 0.2;
          crash = 0.05;
        }
      in
      let cfg =
        { (Config.with_search small (Config.Ri Config.cri)) with Config.fault }
      in
      let run jobs =
        with_global_jobs jobs (fun () ->
            Setup_cache.clear ();
            Trial.run_query_faulty cfg ~trial:3)
      in
      let a = run 1 in
      let b = run 4 in
      Alcotest.(check int) "messages" a.Trial.f_query.Trial.messages
        b.Trial.f_query.Trial.messages;
      Alcotest.(check int) "found" a.Trial.f_query.Trial.found
        b.Trial.f_query.Trial.found;
      Alcotest.(check int) "drift messages" a.Trial.f_drift_messages
        b.Trial.f_drift_messages;
      Alcotest.(check int) "repair messages" a.Trial.f_repair_messages
        b.Trial.f_repair_messages)

(* The parallel RI construction (RI_PAR_BUILD_MIN=1 opens it to small
   networks) must produce the same network as the sequential build. *)
let test_parallel_build_matches_sequential () =
  with_env "RI_PAR_BUILD_MIN" "1" (fun () ->
      List.iter
        (fun (name, purpose) ->
          let cfg = Config.with_search small (Config.Ri (Config.eri small)) in
          let build jobs =
            with_global_jobs jobs (fun () ->
                Setup_cache.clear ();
                let setup = Trial.build ~purpose cfg ~trial:1 in
                net_fingerprint setup.Trial.network)
          in
          Alcotest.(check int64) (name ^ " state") (build 1) (build 4))
        [
          ("rooted", Trial.For_query); ("converged", Trial.For_update);
        ])

let suite =
  ( "pool-and-parallelism",
    [
      Alcotest.test_case "env int parsing" `Quick test_env_int;
      Alcotest.test_case "env float parsing" `Quick test_env_float;
      Alcotest.test_case "map covers all indices" `Quick test_map_covers_all_indices;
      Alcotest.test_case "chunk shapes" `Quick test_chunk_shapes;
      Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
      Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
      Alcotest.test_case "shutdown rejects submissions" `Quick test_shutdown_rejects;
      Alcotest.test_case "nested iter runs inline" `Quick test_nested_iter_inline;
      Alcotest.test_case "label stats accounting" `Quick
        test_label_stats_accounting;
      Alcotest.test_case "parallel = sequential (bit-identical)" `Quick
        test_parallel_matches_sequential;
      Alcotest.test_case "cached setups match fresh builds" `Quick
        test_cache_matches_fresh;
      Alcotest.test_case "sharded wave = sequential wave (bit-identical)" `Quick
        test_sharded_wave_matches_sequential;
      Alcotest.test_case "faulty trial invariant under pool width" `Quick
        test_faulty_trial_width_invariant;
      Alcotest.test_case "parallel build = sequential build (bit-identical)"
        `Quick test_parallel_build_matches_sequential;
    ] )
