(* Domain pool, env parsing, and the parallel-execution guarantees the
   runner and setup cache build on: chunked scheduling covers every
   index exactly once, exceptions propagate, a pool survives reuse,
   parallel runs are bit-identical to sequential ones, and cached trial
   setups reproduce fresh builds exactly. *)

open Ri_util
open Ri_sim

(* ------------------------------------------------------------------ *)
(* Env.                                                                *)

let with_env name value f =
  let old = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv name (match old with Some v -> v | None -> ""))
    f

let test_env_int () =
  with_env "RI_TEST_ENV" "17" (fun () ->
      Alcotest.(check int) "set" 17 (Env.int "RI_TEST_ENV" 3));
  with_env "RI_TEST_ENV" "" (fun () ->
      Alcotest.(check int) "unset/empty falls back" 3 (Env.int "RI_TEST_ENV" 3));
  with_env "RI_TEST_ENV" "junk" (fun () ->
      Alcotest.(check int) "junk falls back" 3 (Env.int "RI_TEST_ENV" 3));
  with_env "RI_TEST_ENV" "0" (fun () ->
      Alcotest.(check int) "below default floor" 3 (Env.int "RI_TEST_ENV" 3);
      Alcotest.(check int) "floor 0 admits it" 0 (Env.int ~min:0 "RI_TEST_ENV" 3))

let test_env_float () =
  with_env "RI_TEST_ENV" "0.25" (fun () ->
      Alcotest.(check (float 1e-9)) "set" 0.25 (Env.float "RI_TEST_ENV" 1.));
  with_env "RI_TEST_ENV" "-1.0" (fun () ->
      Alcotest.(check (float 1e-9)) "negative rejected" 1.
        (Env.float "RI_TEST_ENV" 1.))

(* ------------------------------------------------------------------ *)
(* Pool mechanics.                                                     *)

let test_map_covers_all_indices () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          List.iter
            (fun n ->
              let out = Pool.map_chunked pool ~n (fun i -> i * i) in
              Alcotest.(check int)
                (Printf.sprintf "length jobs=%d n=%d" jobs n)
                n (Array.length out);
              Array.iteri
                (fun i v ->
                  Alcotest.(check int)
                    (Printf.sprintf "slot %d jobs=%d" i jobs)
                    (i * i) v)
                out)
            [ 0; 1; 2; 7; 64 ]))
    [ 1; 2; 4 ]

let test_chunk_shapes () =
  Pool.with_pool ~jobs:3 (fun pool ->
      List.iter
        (fun chunk ->
          let hits = Array.make 23 0 in
          let m = Mutex.create () in
          Pool.iter ~chunk pool ~n:23 (fun i ->
              Mutex.lock m;
              hits.(i) <- hits.(i) + 1;
              Mutex.unlock m);
          Array.iteri
            (fun i h ->
              Alcotest.(check int)
                (Printf.sprintf "index %d chunk %d ran once" i chunk)
                1 h)
            hits)
        [ 1; 2; 5; 23; 100 ])

exception Boom

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "raises at jobs=%d" jobs)
            Boom
            (fun () ->
              Pool.iter pool ~n:16 (fun i -> if i = 11 then raise Boom));
          (* The pool stays usable after a failed job. *)
          let out = Pool.map_chunked pool ~n:4 (fun i -> i + 1) in
          Alcotest.(check (array int)) "reusable after failure"
            [| 1; 2; 3; 4 |] out))
    [ 1; 3 ]

let test_pool_reuse () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check int) "width" 4 (Pool.jobs pool);
      for round = 1 to 50 do
        let out = Pool.map_chunked pool ~n:round (fun i -> i) in
        Alcotest.(check int)
          (Printf.sprintf "round %d" round)
          round (Array.length out)
      done)

let test_shutdown_rejects () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.iter: pool is shut down") (fun () ->
      Pool.iter pool ~n:1 (fun _ -> ()))

(* ------------------------------------------------------------------ *)
(* Parallel runs are bit-identical to sequential ones.                 *)

let check_summary_eq label (a : Stats.summary) (b : Stats.summary) =
  Alcotest.(check (float 0.)) (label ^ " mean") a.Stats.mean b.Stats.mean;
  Alcotest.(check (float 0.)) (label ^ " ci95") a.Stats.ci95 b.Stats.ci95;
  Alcotest.(check (float 0.)) (label ^ " stddev") a.Stats.stddev b.Stats.stddev;
  Alcotest.(check int) (label ^ " n") a.Stats.n b.Stats.n;
  Alcotest.(check (float 0.)) (label ^ " min") a.Stats.min b.Stats.min;
  Alcotest.(check (float 0.)) (label ^ " max") a.Stats.max b.Stats.max

let small = Config.scaled Config.base ~num_nodes:300

let test_parallel_matches_sequential () =
  let spec = { Runner.min_trials = 3; max_trials = 9; target_rel_error = 0.05 } in
  let run_with jobs cfg kind =
    Pool.with_pool ~jobs (fun pool ->
        Runner.run ~pool spec (fun ~trial ->
            match kind with
            | `Query -> float_of_int (Trial.run_query cfg ~trial).Trial.messages
            | `Update ->
                float_of_int
                  (Trial.run_update cfg ~trial).Trial.update_messages))
  in
  List.iter
    (fun (name, search, kind) ->
      let cfg = Config.with_search small search in
      let seq = run_with 1 cfg kind in
      let par = run_with 4 cfg kind in
      check_summary_eq name seq par)
    [
      ("eri query", Config.Ri (Config.eri small), `Query);
      ("cri update", Config.Ri Config.cri, `Update);
      ("no-ri query", Config.No_ri, `Query);
    ]

(* ------------------------------------------------------------------ *)
(* Setup cache: cached builds must be indistinguishable from fresh.    *)

let test_cache_matches_fresh () =
  let was = Setup_cache.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Setup_cache.set_enabled was;
      Setup_cache.clear ())
    (fun () ->
      (* Sweep cells that share the overlay and content draw: same
         (seed, trial) under different search schemes and stop
         conditions, as the experiments do. *)
      let cells =
        [
          Config.with_search small (Config.Ri (Config.eri small));
          Config.with_search small (Config.Ri Config.cri);
          Config.with_search
            { small with Config.stop_condition = 50 }
            (Config.Ri Config.cri);
          Config.with_search
            { small with Config.compression_ratio = 0.8 }
            (Config.Ri (Config.eri small));
        ]
      in
      let metrics enabled =
        Setup_cache.set_enabled enabled;
        Setup_cache.clear ();
        List.concat_map
          (fun cfg ->
            List.map
              (fun trial ->
                let q = Trial.run_query cfg ~trial in
                let u = Trial.run_update cfg ~trial in
                (q.Trial.messages, q.Trial.found, q.Trial.nodes_visited,
                 u.Trial.update_messages))
              [ 0; 1; 2 ])
          cells
      in
      let fresh = metrics false in
      let cached = metrics true in
      List.iteri
        (fun i ((qm, qf, qv, um), (qm', qf', qv', um')) ->
          let lbl fmt = Printf.sprintf "cell %d %s" i fmt in
          Alcotest.(check int) (lbl "messages") qm qm';
          Alcotest.(check int) (lbl "found") qf qf';
          Alcotest.(check int) (lbl "visited") qv qv';
          Alcotest.(check int) (lbl "update messages") um um')
        (List.combine fresh cached);
      (* The sweep above really exercised the cache: 4 cells x 3 trials
         with shared (seed, trial) keys must hit after the first cell. *)
      let s = Setup_cache.stats () in
      Alcotest.(check bool) "graph hits happened" true (s.Setup_cache.graph_hits > 0);
      Alcotest.(check bool) "content hits happened" true
        (s.Setup_cache.content_hits > 0))

let suite =
  ( "pool-and-parallelism",
    [
      Alcotest.test_case "env int parsing" `Quick test_env_int;
      Alcotest.test_case "env float parsing" `Quick test_env_float;
      Alcotest.test_case "map covers all indices" `Quick test_map_covers_all_indices;
      Alcotest.test_case "chunk shapes" `Quick test_chunk_shapes;
      Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
      Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
      Alcotest.test_case "shutdown rejects submissions" `Quick test_shutdown_rejects;
      Alcotest.test_case "parallel = sequential (bit-identical)" `Quick
        test_parallel_matches_sequential;
      Alcotest.test_case "cached setups match fresh builds" `Quick
        test_cache_matches_fresh;
    ] )
