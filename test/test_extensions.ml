(* Extensions the paper sketches: the hybrid CRI-HRI (Section 6.2),
   parallel forwarding (Section 3.1), cycle avoidance (Section 7) and
   update batching (Section 4.3). *)

open Ri_content
open Ri_core
open Ri_topology
open Ri_p2p

let s total by = Summary.of_counts ~total ~by_topic:by

let cost3 = Cost_model.make ~fanout:3.

(* ------------------------------------------------------------------ *)
(* Hybrid CRI-HRI.                                                     *)

let test_hybrid_row_shape () =
  let t = Hri.create_hybrid ~horizon:2 ~cost:cost3 ~width:1 ~local:(s 5 [| 5 |]) () in
  Alcotest.(check bool) "has tail" true (Hri.has_tail t);
  Alcotest.(check int) "row length = horizon + 1" 3 (Hri.row_length t);
  let plain = Hri.create ~horizon:2 ~cost:cost3 ~width:1 ~local:(s 5 [| 5 |]) () in
  Alcotest.(check int) "plain row length" 2 (Hri.row_length plain)

let test_hybrid_never_forgets () =
  (* Chain a - b - c - d with horizon 2: the plain HRI loses a's
     documents at d (3 hops), the hybrid keeps them in the tail. *)
  let chain create =
    let local = s 100 [| 100 |] in
    let zero = Summary.zero ~topics:1 in
    let a = create ~horizon:2 ~cost:cost3 ~width:1 ~local () in
    let b = create ~horizon:2 ~cost:cost3 ~width:1 ~local:zero () in
    Hri.set_row b ~peer:0 (Hri.export a ~exclude:None);
    let c = create ~horizon:2 ~cost:cost3 ~width:1 ~local:zero () in
    Hri.set_row c ~peer:1 (Hri.export b ~exclude:None);
    let d = create ~horizon:2 ~cost:cost3 ~width:1 ~local:zero () in
    Hri.set_row d ~peer:2 (Hri.export c ~exclude:None);
    Hri.goodness d ~peer:2 ~query:[ 0 ]
  in
  Alcotest.(check (float 1e-9))
    "plain HRI is blind" 0.
    (chain (Hri.create ?rows:None ?quant:None));
  (* Hybrid: 100 docs in the tail, discounted at horizon+1 = 3 hops:
     100 / 3^2. *)
  Alcotest.(check (float 1e-6)) "hybrid sees the tail" (100. /. 9.)
    (chain (Hri.create_hybrid ?rows:None ?quant:None))

let test_hybrid_tail_accumulates () =
  (* The column crossing the horizon merges into the tail rather than
     replacing it. *)
  let local = s 10 [| 10 |] in
  let t = Hri.create_hybrid ~horizon:2 ~cost:cost3 ~width:1 ~local () in
  Hri.set_row t ~peer:0
    [| s 1 [| 1 |]; s 2 [| 2 |]; s 40 [| 40 |] |];
  let e = Hri.export t ~exclude:None in
  Alcotest.(check (float 1e-9)) "slot0 local" 10. e.(0).Summary.total;
  Alcotest.(check (float 1e-9)) "slot1 = old hop1" 1. e.(1).Summary.total;
  Alcotest.(check (float 1e-9)) "tail = old hop2 + old tail" 42.
    e.(2).Summary.total

let test_hybrid_through_scheme_and_network () =
  (* Converged hybrid network on the Figure 4/5 tree: total visibility
     equals CRI's even with horizon 1. *)
  let graph = Graph.of_edges ~n:6 [ (0, 1); (0, 2); (0, 3); (3, 4); (3, 5) ] in
  let locals =
    [| s 300 [| 30; 80; 0; 10 |]; s 100 [| 20; 0; 10; 30 |];
       s 1000 [| 0; 300; 0; 50 |]; s 200 [| 100; 0; 100; 150 |];
       s 50 [| 25; 0; 15; 50 |]; s 50 [| 15; 0; 25; 25 |] |]
  in
  let content =
    { Network.summary = (fun v -> locals.(v)); count_matching = (fun _ _ -> 0) }
  in
  let net =
    Network.create ~graph ~content
      ~scheme:(Scheme.Hybrid_kind { horizon = 1; fanout = 4. }) ()
  in
  match Scheme.row (Network.ri net 3) ~peer:0 with
  | Some (Scheme.Hop_vector r) ->
      let total = Array.fold_left (fun acc x -> acc +. x.Summary.total) 0. r in
      Alcotest.(check (float 1e-6)) "all 1400 docs visible" 1400. total;
      Alcotest.(check (float 1e-6)) "hop 1 = A local" 300. r.(0).Summary.total;
      Alcotest.(check (float 1e-6)) "tail = B + C" 1100. r.(1).Summary.total
  | _ -> Alcotest.fail "expected hop vector"

(* ------------------------------------------------------------------ *)
(* Parallel forwarding.                                                *)

let parallel_net () =
  (* Figure 2 overlay with documents in two separate subtrees. *)
  let edges = [ (0, 1); (0, 2); (0, 3); (1, 4); (1, 5); (2, 6); (6, 7); (3, 8); (3, 9) ] in
  let matches = [| 0; 0; 0; 0; 6; 0; 0; 0; 6; 0 |] in
  let graph = Graph.of_edges ~n:10 edges in
  let content =
    {
      Network.summary =
        (fun v -> Summary.of_counts ~total:matches.(v) ~by_topic:[| matches.(v) |]);
      count_matching = (fun v _ -> matches.(v));
    }
  in
  Network.create ~graph ~content ~scheme:Scheme.Cri_kind ()

let q stop = Workload.query ~topics:[ 0 ] ~stop

let test_parallel_finds_both_subtrees () =
  let net = parallel_net () in
  let o = Query.run_parallel net ~origin:0 ~query:(q 12) ~branch:2 in
  Alcotest.(check bool) "satisfied" true o.Query.p_satisfied;
  Alcotest.(check int) "both caches found" 12 o.Query.p_found;
  (* Both document holders sit two hops from the origin. *)
  Alcotest.(check int) "two rounds" 2 o.Query.p_rounds

let test_parallel_beats_sequential_rounds () =
  let net = parallel_net () in
  let seq = Query.run net ~origin:0 ~query:(q 12) ~forwarding:Query.Ri_guided in
  let par = Query.run_parallel net ~origin:0 ~query:(q 12) ~branch:3 in
  Alcotest.(check bool) "sequential serial chain longer than rounds" true
    (Query.messages seq > par.Query.p_rounds);
  Alcotest.(check int) "same results" seq.Query.found par.Query.p_found

let test_parallel_branch_one_no_backtrack () =
  let net = parallel_net () in
  let o = Query.run_parallel net ~origin:0 ~query:(q 12) ~branch:1 in
  (* One path only: it cannot gather both subtrees. *)
  Alcotest.(check bool) "single path insufficient" true (o.Query.p_found < 12)

let test_parallel_counts_duplicates () =
  (* Diamond: both depth-1 nodes forward to the shared child; the second
     delivery is dropped but paid for. *)
  let graph = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let matches = [| 0; 0; 0; 1 |] in
  let content =
    {
      Network.summary =
        (fun v -> Summary.of_counts ~total:matches.(v) ~by_topic:[| matches.(v) |]);
      count_matching = (fun v _ -> matches.(v));
    }
  in
  let net =
    Network.create ~graph ~content ~scheme:Scheme.Cri_kind
      ~mode:(Network.Rooted 0) ()
  in
  let o = Query.run_parallel net ~origin:0 ~query:(q 5) ~branch:2 in
  Alcotest.(check int) "found once" 1 o.Query.p_found;
  Alcotest.(check int) "4 forwards incl. duplicate" 4
    o.Query.p_counters.Message.query_forwards

let test_parallel_validation () =
  let net = parallel_net () in
  Alcotest.check_raises "branch 0"
    (Invalid_argument "Query.run_parallel: branch must be positive") (fun () ->
      ignore (Query.run_parallel net ~origin:0 ~query:(q 1) ~branch:0))

(* ------------------------------------------------------------------ *)
(* Cycle avoidance.                                                    *)

let test_cycle_avoidance () =
  let graph = Graph.of_edges ~n:4 [ (0, 1); (1, 2) ] in
  let content =
    {
      Network.summary = (fun v -> s (v + 1) [| v + 1 |]);
      count_matching = (fun _ _ -> 0);
    }
  in
  let net = Network.create ~graph ~content ~scheme:Scheme.Cri_kind () in
  let counters = Message.create () in
  (* 0 and 2 are already connected through 1: refused. *)
  Alcotest.(check bool) "cycle refused" true
    (Churn.connect_avoiding_cycles net 0 2 ~counters = Churn.Rejected_cycle);
  Alcotest.(check bool) "no link created" false (Network.has_link net 0 2);
  Alcotest.(check int) "probe paid" 1 counters.Message.update_messages;
  (* Node 3 is isolated: allowed. *)
  Alcotest.(check bool) "fresh node accepted" true
    (Churn.connect_avoiding_cycles net 3 0 ~counters = Churn.Connected);
  Alcotest.(check bool) "link created" true (Network.has_link net 3 0)

(* ------------------------------------------------------------------ *)
(* Update batching.                                                    *)

let batch_net () =
  let graph = Graph.of_edges ~n:8 (List.init 7 (fun i -> (i, i + 1))) in
  let content =
    {
      Network.summary = (fun _ -> s 100 [| 100 |]);
      count_matching = (fun _ _ -> 0);
    }
  in
  Network.create ~graph ~content ~scheme:Scheme.Cri_kind ()

let test_batcher_single_wave () =
  let net = batch_net () in
  let batcher = Update.Batcher.create net ~origin:0 in
  for docs = 1 to 5 do
    Update.Batcher.note_local_change batcher
      (s (100 + (docs * 10)) [| 100 + (docs * 10) |])
  done;
  Alcotest.(check int) "pending" 5 (Update.Batcher.pending batcher);
  let counters = Message.create () in
  Update.Batcher.flush batcher ~counters;
  Alcotest.(check int) "one wave over the path" 7 counters.Message.update_messages;
  Alcotest.(check int) "drained" 0 (Update.Batcher.pending batcher);
  (* The final state won: node 7's view includes all 50 extra docs. *)
  (match Scheme.row (Network.ri net 7) ~peer:6 with
  | Some (Scheme.Vector r) ->
      Alcotest.(check (float 1e-6)) "latest state propagated" 750. r.Summary.total
  | _ -> Alcotest.fail "missing row");
  (* Idempotent flush. *)
  Message.reset counters;
  Update.Batcher.flush batcher ~counters;
  Alcotest.(check int) "empty flush free" 0 counters.Message.update_messages

let test_batcher_cheaper_than_eager () =
  let eager =
    let net = batch_net () in
    let counters = Message.create () in
    for docs = 1 to 5 do
      Update.local_change net ~origin:0
        ~summary:(s (100 + (docs * 10)) [| 100 + (docs * 10) |])
        ~counters
    done;
    counters.Message.update_messages
  in
  let batched =
    let net = batch_net () in
    let counters = Message.create () in
    let batcher = Update.Batcher.create net ~origin:0 in
    for docs = 1 to 5 do
      Update.Batcher.note_local_change batcher
        (s (100 + (docs * 10)) [| 100 + (docs * 10) |])
    done;
    Update.Batcher.flush batcher ~counters;
    counters.Message.update_messages
  in
  Alcotest.(check bool) "batching saves messages" true (batched < eager)

(* ------------------------------------------------------------------ *)
(* Perturbed (Gaussian error) trials.                                  *)

let test_perturbed_trial_runs () =
  let cfg =
    Ri_sim.Config.scaled
      (Ri_sim.Config.with_search Ri_sim.Config.base
         (Ri_sim.Config.Ri Ri_sim.Config.cri))
      ~num_nodes:300
  in
  let m =
    Ri_sim.Trial.run_query_perturbed cfg ~relative_stddev:0.3
      ~kind:Compression.Overcount ~trial:0
  in
  Alcotest.(check bool) "still terminates and satisfies" true
    m.Ri_sim.Trial.satisfied;
  (* The error model must actually change the index state: compare the
     same trial's RIs with and without perturbation. *)
  let exact = Ri_sim.Trial.build ~purpose:Ri_sim.Trial.For_query cfg ~trial:0 in
  let noisy =
    Ri_sim.Trial.build ~purpose:Ri_sim.Trial.For_query
      ~perturb:(0.3, Compression.Overcount) cfg ~trial:0
  in
  let row_total setup =
    let net = setup.Ri_sim.Trial.network in
    let ri = Network.ri net setup.Ri_sim.Trial.origin in
    List.fold_left
      (fun acc peer ->
        match Scheme.row ri ~peer with
        | Some p -> acc +. Scheme.payload_total p
        | None -> acc)
      0. (Scheme.peers ri)
  in
  Alcotest.(check bool) "error model inflates overcounting rows" true
    (row_total noisy > row_total exact)

(* ------------------------------------------------------------------ *)
(* Query event tracing.                                                *)

let test_query_trace_matches_counters () =
  let net = parallel_net () in
  let events = ref [] in
  let o =
    Query.run ~on_event:(fun e -> events := e :: !events) net ~origin:0
      ~query:(q 12) ~forwarding:Query.Ri_guided
  in
  let events = List.rev !events in
  let count p = List.length (List.filter p events) in
  Alcotest.(check int) "forward events"
    o.Query.counters.Message.query_forwards
    (count (function Query.Forwarded _ -> true | _ -> false));
  Alcotest.(check int) "return events"
    o.Query.counters.Message.query_returns
    (count (function Query.Returned _ -> true | _ -> false));
  Alcotest.(check int) "result events"
    o.Query.counters.Message.result_messages
    (count (function Query.Results _ -> true | _ -> false));
  (* Results reported through the trace sum to the outcome. *)
  let traced_found =
    List.fold_left
      (fun acc -> function Query.Results { count; _ } -> acc + count | _ -> acc)
      0 events
  in
  Alcotest.(check int) "traced results" o.Query.found traced_found;
  (* The first movement is a forward out of the origin. *)
  (match
     List.find_opt (function Query.Forwarded _ -> true | _ -> false) events
   with
  | Some (Query.Forwarded { sender; _ }) ->
      Alcotest.(check int) "starts at the origin" 0 sender
  | _ -> Alcotest.fail "no forward event")

(* ------------------------------------------------------------------ *)
(* Storage accounting (Section 4.1).                                   *)

let test_storage_entries () =
  (* 4 topics, 3 neighbors: (3+1) rows x (1+4) counters = 20 for the
     flat schemes; x horizon for HRI; x (horizon+1) for the hybrid. *)
  Alcotest.(check int) "CRI" 20
    (Scheme.storage_entries Scheme.Cri_kind ~width:4 ~neighbors:3);
  Alcotest.(check int) "ERI" 20
    (Scheme.storage_entries (Scheme.Eri_kind { fanout = 4. }) ~width:4 ~neighbors:3);
  Alcotest.(check int) "HRI" 100
    (Scheme.storage_entries
       (Scheme.Hri_kind { horizon = 5; fanout = 4. })
       ~width:4 ~neighbors:3);
  Alcotest.(check int) "Hybrid" 120
    (Scheme.storage_entries
       (Scheme.Hybrid_kind { horizon = 5; fanout = 4. })
       ~width:4 ~neighbors:3);
  Alcotest.check_raises "bad dims"
    (Invalid_argument "Scheme.storage_entries: bad dimensions") (fun () ->
      ignore (Scheme.storage_entries Scheme.Cri_kind ~width:0 ~neighbors:1))

let suite =
  ( "extensions",
    [
      Alcotest.test_case "hybrid row shape" `Quick test_hybrid_row_shape;
      Alcotest.test_case "hybrid never forgets" `Quick test_hybrid_never_forgets;
      Alcotest.test_case "hybrid tail accumulates" `Quick test_hybrid_tail_accumulates;
      Alcotest.test_case "hybrid network build" `Quick test_hybrid_through_scheme_and_network;
      Alcotest.test_case "parallel finds both subtrees" `Quick test_parallel_finds_both_subtrees;
      Alcotest.test_case "parallel beats sequential rounds" `Quick test_parallel_beats_sequential_rounds;
      Alcotest.test_case "parallel branch-1 no backtrack" `Quick test_parallel_branch_one_no_backtrack;
      Alcotest.test_case "parallel pays for duplicates" `Quick test_parallel_counts_duplicates;
      Alcotest.test_case "parallel validation" `Quick test_parallel_validation;
      Alcotest.test_case "cycle avoidance" `Quick test_cycle_avoidance;
      Alcotest.test_case "batcher single wave" `Quick test_batcher_single_wave;
      Alcotest.test_case "batcher cheaper than eager" `Quick test_batcher_cheaper_than_eager;
      Alcotest.test_case "perturbed trials" `Quick test_perturbed_trial_runs;
      Alcotest.test_case "query trace" `Quick test_query_trace_matches_counters;
      Alcotest.test_case "storage entries" `Quick test_storage_entries;
    ] )
