(* Document-result placement: QR conservation, 80/20 bias, exact ground
   truth. *)

open Ri_util
open Ri_content

let universe = Topic.make 10

let distribute ?(seed = 1) ?(n = 500) ?(results = 100) ?(distribution = Placement.Uniform)
    ?(query = [ 0 ]) ?background () =
  Placement.distribute (Prng.create seed) ~universe ~n ~query_topics:query
    ~results ~distribution ?background_per_node:background ()

let test_conservation () =
  let p = distribute () in
  Alcotest.(check int) "QR preserved" 100
    (Array.fold_left ( + ) 0 p.Placement.matches);
  Alcotest.(check int) "total field" 100 p.Placement.total_matches

let test_summary_consistency () =
  (* With a single-topic query, background documents avoid that topic
     entirely, so the per-node count on it equals the match count. *)
  let p = distribute ~background:3.0 () in
  Array.iteri
    (fun v m ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "node %d query-topic count" v)
        (float_of_int m)
        (Summary.get (Placement.node_summary p v) 0))
    p.Placement.matches

let test_totals_include_background () =
  let p = distribute ~background:2.0 ~results:0 () in
  let total =
    Array.fold_left (fun acc s -> acc +. s.Summary.total) 0. p.Placement.summaries
  in
  (* 500 nodes x ~2 docs. *)
  Alcotest.(check bool) "background present" true (total > 500. && total < 1500.)

let test_biased_distribution () =
  let p =
    distribute ~n:1000 ~results:10_000 ~distribution:Placement.eighty_twenty ()
  in
  (* The top 20% of nodes by match count should hold about 80% of the
     results. *)
  let sorted = Array.copy p.Placement.matches in
  Array.sort (fun a b -> compare b a) sorted;
  let top = Array.sub sorted 0 200 in
  let share =
    float_of_int (Array.fold_left ( + ) 0 top) /. float_of_int 10_000
  in
  Alcotest.(check bool) "top quintile holds ~80%" true
    (share > 0.75 && share < 0.88)

let test_uniform_spread () =
  let p = distribute ~n:1000 ~results:10_000 () in
  let sorted = Array.copy p.Placement.matches in
  Array.sort (fun a b -> compare b a) sorted;
  let top = Array.sub sorted 0 200 in
  let share =
    float_of_int (Array.fold_left ( + ) 0 top) /. float_of_int 10_000
  in
  (* Uniform placement gives the top quintile far less than 80%. *)
  Alcotest.(check bool) "uniform lacks concentration" true (share < 0.40)

let test_multi_topic_query_ground_truth () =
  (* Background documents knock out one query topic, so none can match
     the conjunction; summaries on each query topic are >= matches. *)
  let p = distribute ~query:[ 2; 5 ] ~background:4.0 () in
  Array.iteri
    (fun v m ->
      let s = Placement.node_summary p v in
      Alcotest.(check bool) "t2 >= matches" true
        (Summary.get s 2 >= float_of_int m);
      Alcotest.(check bool) "t5 >= matches" true
        (Summary.get s 5 >= float_of_int m);
      (* At least one of the two query topics has no background excess
         beyond what avoided docs contribute is not guaranteed per node,
         but the minimum across query topics bounds matches. *)
      Alcotest.(check bool) "min topic bounds matches" true
        (Float.min (Summary.get s 2) (Summary.get s 5) >= float_of_int m))
    p.Placement.matches

let test_validation () =
  Alcotest.check_raises "empty query"
    (Invalid_argument "Placement.distribute: empty query") (fun () ->
      ignore (distribute ~query:[] ()));
  Alcotest.check_raises "bad share"
    (Invalid_argument "Placement.distribute: bias shares must be in (0, 1)")
    (fun () ->
      ignore
        (distribute
           ~distribution:(Placement.Biased { doc_share = 1.5; node_share = 0.2 })
           ()))

let test_determinism () =
  let a = distribute ~seed:9 () and b = distribute ~seed:9 () in
  Alcotest.(check bool) "same seed same placement" true
    (a.Placement.matches = b.Placement.matches)

(* Above RI_PLACE_SHARD_MIN the background pass runs in fixed 4096-node
   shards, each on a stream split off the parent in shard order: the
   layout may depend only on [n] and the seed, never on how many pool
   domains drained the shards.  9000 nodes exercises three shards. *)
let test_shard_determinism_across_widths () =
  let with_env name value f =
    let old = Sys.getenv_opt name in
    Unix.putenv name value;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv name (match old with Some v -> v | None -> ""))
      f
  in
  with_env "RI_PLACE_SHARD_MIN" "64" (fun () ->
      let build jobs =
        let prev = Pool.jobs (Pool.global ()) in
        Pool.set_global_jobs jobs;
        Fun.protect
          ~finally:(fun () -> Pool.set_global_jobs prev)
          (fun () ->
            distribute ~seed:5 ~n:9000 ~results:400 ~background:2.0 ())
      in
      let a = build 1 in
      let b = build 4 in
      Alcotest.(check bool) "matches equal" true
        (a.Placement.matches = b.Placement.matches);
      Alcotest.(check bool) "summaries bit-identical" true
        (a.Placement.summaries = b.Placement.summaries))

let prop_matches_nonnegative_and_conserved =
  QCheck.Test.make ~name:"matches are non-negative and sum to QR" ~count:50
    QCheck.(pair (int_range 1 400) (int_range 0 500))
    (fun (n, results) ->
      let p =
        Placement.distribute (Prng.create (n + results)) ~universe ~n
          ~query_topics:[ 1 ] ~results ~distribution:Placement.Uniform ()
      in
      Array.for_all (fun m -> m >= 0) p.Placement.matches
      && Array.fold_left ( + ) 0 p.Placement.matches = results)

let suite =
  ( "placement",
    [
      Alcotest.test_case "conservation" `Quick test_conservation;
      Alcotest.test_case "summary consistency" `Quick test_summary_consistency;
      Alcotest.test_case "background totals" `Quick test_totals_include_background;
      Alcotest.test_case "80/20 bias" `Quick test_biased_distribution;
      Alcotest.test_case "uniform spread" `Quick test_uniform_spread;
      Alcotest.test_case "multi-topic ground truth" `Quick test_multi_topic_query_ground_truth;
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "shard layout invariant under pool width" `Quick
        test_shard_determinism_across_widths;
      QCheck_alcotest.to_alcotest prop_matches_nonnegative_and_conserved;
    ] )
