(* Strict JSON parser: value coverage, escapes, accessor projections,
   render round-trips, and rejection of the malformed inputs a lenient
   parser would wave through. *)

open Ri_util

let ok s = Json.parse_exn s

let rejects name s =
  match Json.parse s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: accepted %S" name s

let test_atoms () =
  Alcotest.(check bool) "null" true (ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (ok "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (ok "false" = Json.Bool false);
  Alcotest.(check bool) "int" true (ok "42" = Json.Num 42.);
  Alcotest.(check bool) "negative" true (ok "-7" = Json.Num (-7.));
  Alcotest.(check bool) "float" true (ok "2.5e-3" = Json.Num 0.0025);
  Alcotest.(check bool) "string" true (ok "\"hi\"" = Json.Str "hi");
  Alcotest.(check bool) "leading ws" true (ok "  1 " = Json.Num 1.)

let test_containers () =
  Alcotest.(check bool) "empty array" true (ok "[]" = Json.Arr []);
  Alcotest.(check bool) "empty object" true (ok "{}" = Json.Obj []);
  let v = ok {|{"a": [1, {"b": null}], "c": "x"}|} in
  match v with
  | Json.Obj [ ("a", Json.Arr [ Json.Num 1.; Json.Obj [ ("b", Json.Null) ] ]);
               ("c", Json.Str "x") ] -> ()
  | _ -> Alcotest.fail "nested structure mis-parsed"

let test_string_escapes () =
  Alcotest.(check bool) "basic escapes" true
    (ok {|"a\"b\\c\nd\te"|} = Json.Str "a\"b\\c\nd\te");
  Alcotest.(check bool) "unicode escape" true
    (ok "\"\\u0041\\u0009\"" = Json.Str "A\t");
  Alcotest.(check bool) "solidus" true (ok {|"\/"|} = Json.Str "/")

let test_strictness () =
  rejects "trailing garbage" "1 2";
  rejects "trailing comma array" "[1,]";
  rejects "trailing comma object" {|{"a":1,}|};
  rejects "bare word" "nul";
  rejects "NaN" "NaN";
  rejects "Infinity" "Infinity";
  rejects "single quotes" "'a'";
  rejects "unterminated string" "\"abc";
  rejects "unterminated array" "[1,2";
  rejects "control char in string" "\"a\nb\"";
  rejects "missing colon" {|{"a" 1}|};
  rejects "empty input" "";
  rejects "leading zero" "01"

let test_error_offset () =
  match Json.parse "[1, x]" with
  | Ok _ -> Alcotest.fail "accepted bad array"
  | Error e ->
      Alcotest.(check bool) "error mentions offset" true
        (Astring.String.is_infix ~affix:"4" e)

let test_accessors () =
  let j = ok {|{"n": 3, "f": 1.5, "s": "v", "b": true, "l": [1], "o": {}}|} in
  let get k = Option.get (Json.member k j) in
  Alcotest.(check (option int)) "to_int" (Some 3) (Json.to_int (get "n"));
  Alcotest.(check (option int)) "to_int on float" None (Json.to_int (get "f"));
  Alcotest.(check bool) "to_float" true (Json.to_float (get "f") = Some 1.5);
  Alcotest.(check (option string)) "to_string" (Some "v")
    (Json.to_string (get "s"));
  Alcotest.(check (option bool)) "to_bool" (Some true) (Json.to_bool (get "b"));
  Alcotest.(check bool) "to_list" true (Json.to_list (get "l") <> None);
  Alcotest.(check bool) "to_obj" true (Json.to_obj (get "o") = Some []);
  Alcotest.(check bool) "member missing" true (Json.member "zz" j = None);
  Alcotest.(check bool) "member on non-object" true
    (Json.member "a" (Json.Num 1.) = None)

let test_render_roundtrip () =
  List.iter
    (fun s ->
      let v = ok s in
      Alcotest.(check bool) (Printf.sprintf "roundtrip %s" s) true
        (Json.parse_exn (Json.render v) = v))
    [
      "null"; "true"; "-3"; "2.5"; {|"a\"bc"|}; "[1,[2,[]]]";
      {|{"k":[true,null],"s":"\n"}|};
    ];
  Alcotest.(check string) "integral floats render as ints" "[1,-2,0]"
    (Json.render (Json.Arr [ Json.Num 1.; Json.Num (-2.); Json.Num 0. ]))

let test_escape () =
  Alcotest.(check string) "escape specials" {|a\"b\\c\nd|}
    (Json.escape "a\"b\\c\nd");
  Alcotest.(check string) "escape control byte" "x\\u0001y"
    (Json.escape "x\001y")

let suite =
  ( "json",
    [
      Alcotest.test_case "atoms" `Quick test_atoms;
      Alcotest.test_case "containers" `Quick test_containers;
      Alcotest.test_case "string escapes" `Quick test_string_escapes;
      Alcotest.test_case "strict rejections" `Quick test_strictness;
      Alcotest.test_case "error carries offset" `Quick test_error_offset;
      Alcotest.test_case "accessors" `Quick test_accessors;
      Alcotest.test_case "render roundtrip" `Quick test_render_roundtrip;
      Alcotest.test_case "escape" `Quick test_escape;
    ] )
