(* Event-driven traffic plane: heap tiebreak order, the mailbox service
   model, zero-latency equivalence of the Step machine with the
   synchronous query and of the engine-driven wave with the sequential
   wave, Poisson/Zipf workload sanity, and the determinism contract —
   traffic traces byte-identical at any pool width. *)

open Ri_util
open Ri_content
open Ri_obs
open Ri_p2p
open Ri_sim
module Traffic = Ri_experiments.Traffic

let small = Config.scaled Config.base ~num_nodes:300

let eri_cfg = Config.with_search small (Config.Ri (Config.eri small))

let nori_cfg = Config.with_search small Config.No_ri

(* ------------------------------------------------------------------ *)
(* Engine: heap order and mailbox model.                               *)

let test_heap_tiebreak () =
  let eng = Engine.create ~nodes:1 () in
  let order = ref [] in
  let note i () = order := i :: !order in
  Engine.schedule eng ~at:10 (note 0);
  Engine.schedule eng ~at:5 (note 1);
  Engine.schedule eng ~at:10 (note 2);
  Engine.schedule eng ~at:5 (note 3);
  Engine.schedule eng ~at:0 (note 4);
  Engine.run eng;
  (* Time first; equal times pop in scheduling order. *)
  Alcotest.(check (list int)) "(time, seq) order" [ 4; 1; 3; 0; 2 ]
    (List.rev !order);
  Alcotest.(check int) "clock at last event" 10 (Engine.now eng)

let test_heap_stress_sorted () =
  let eng = Engine.create ~nodes:1 () in
  let rng = Prng.create 7 in
  let times = ref [] in
  for _ = 1 to 1000 do
    let at = Prng.int rng 50 in
    Engine.schedule eng ~at (fun () -> times := Engine.now eng :: !times)
  done;
  Engine.run eng;
  let ts = List.rev !times in
  Alcotest.(check int) "all ran" 1000 (List.length ts);
  Alcotest.(check bool) "nondecreasing" true
    (fst
       (List.fold_left
          (fun (ok, prev) t -> (ok && t >= prev, t))
          (true, 0) ts))

let test_schedule_past_rejected () =
  let eng = Engine.create ~nodes:1 () in
  Engine.schedule eng ~at:5 (fun () ->
      Alcotest.check_raises "past event"
        (Invalid_argument "Engine.schedule: event in the past") (fun () ->
          Engine.schedule eng ~at:4 ignore));
  Engine.run eng

let test_mailbox_service () =
  let eng = Engine.create ~service_ns:10 ~nodes:2 () in
  let done_at = ref [] in
  Engine.inject eng ~at:0 ~dst:0 (fun () ->
      done_at := ("a", Engine.now eng) :: !done_at);
  Engine.inject eng ~at:0 ~dst:0 (fun () ->
      done_at := ("b", Engine.now eng) :: !done_at);
  Engine.inject eng ~at:0 ~dst:1 (fun () ->
      done_at := ("c", Engine.now eng) :: !done_at);
  Engine.run eng;
  (* Node 0 services one message at a time (10 ns each); node 1 is an
     independent server. *)
  Alcotest.(check (list (pair string int)))
    "FIFO service, independent nodes"
    [ ("a", 10); ("c", 10); ("b", 20) ]
    (List.rev !done_at);
  Alcotest.(check int) "one message waited" 1 (Engine.queue_peak eng);
  Alcotest.(check int) "three serviced" 3 (Engine.processed eng)

let test_link_latency () =
  let eng = Engine.create ~link_ns:100 ~nodes:2 () in
  let hops = ref [] in
  Engine.inject eng ~at:0 ~dst:0 (fun () ->
      hops := Engine.now eng :: !hops;
      Engine.send eng ~dst:1 (fun () ->
          hops := Engine.now eng :: !hops;
          Engine.send eng ~dst:0 (fun () -> hops := Engine.now eng :: !hops)));
  Engine.run eng;
  Alcotest.(check (list int)) "100 ns per hop" [ 0; 100; 200 ]
    (List.rev !hops)

(* ------------------------------------------------------------------ *)
(* Zero latency: the engine replays the synchronous executions.        *)

let query_event_str = function
  | Query.Forwarded { sender; receiver } ->
      Printf.sprintf "fwd %d->%d" sender receiver
  | Query.Returned { sender; receiver } ->
      Printf.sprintf "ret %d->%d" sender receiver
  | Query.Results { at; count } -> Printf.sprintf "res %d:%d" at count
  | Query.Timed_out _ -> "timeout"
  | Query.Gave_up _ -> "gave_up"
  | Query.Reconciled _ -> "reconciled"

let run_query_sync setup forwarding rng =
  let events = ref [] in
  let o =
    Query.run ~rng
      ~on_event:(fun e -> events := query_event_str e :: !events)
      setup.Trial.network ~origin:setup.Trial.origin ~query:setup.Trial.query
      ~forwarding
  in
  (o, List.rev !events)

let run_query_engine setup forwarding rng =
  let events = ref [] in
  let net = setup.Trial.network in
  let eng = Engine.create ~nodes:(Network.size net) () in
  let result = ref None in
  Engine.inject eng ~at:0 ~dst:setup.Trial.origin (fun () ->
      let st, first =
        Query.Step.start ~rng
          ~on_event:(fun e -> events := query_event_str e :: !events)
          net ~origin:setup.Trial.origin ~query:setup.Trial.query ~forwarding
      in
      let rec dispatch = function
        | None -> result := Some (Query.Step.finish st)
        | Some (s : Query.Step.send) ->
            Engine.send eng ~dst:s.Query.Step.dst (fun () ->
                dispatch (Query.Step.deliver st s))
      in
      dispatch first);
  Engine.run eng;
  (Option.get !result, List.rev !events)

let check_query_equiv cfg forwarding trial =
  let rng_seed = Prng.create (1000 + trial) in
  let s1 = Trial.build ~purpose:Trial.For_update cfg ~trial in
  let o1, e1 = run_query_sync s1 forwarding (Prng.copy rng_seed) in
  let s2 = Trial.build ~purpose:Trial.For_update cfg ~trial in
  let o2, e2 = run_query_engine s2 forwarding (Prng.copy rng_seed) in
  Alcotest.(check (list string)) "same events in the same order" e1 e2;
  Alcotest.(check int) "found" o1.Query.found o2.Query.found;
  Alcotest.(check bool) "satisfied" o1.Query.satisfied o2.Query.satisfied;
  Alcotest.(check int) "nodes visited" o1.Query.nodes_visited
    o2.Query.nodes_visited;
  Alcotest.(check int) "messages" (Query.messages o1) (Query.messages o2)

let test_step_matches_run_ri () =
  for trial = 0 to 3 do
    check_query_equiv eri_cfg Query.Ri_guided trial
  done

let test_step_matches_run_random_walk () =
  for trial = 0 to 3 do
    check_query_equiv nori_cfg Query.Random_walk trial
  done

(* Engine-driven wave vs the sequential wave: same local change on two
   identical builds of the same trial must deliver the same messages in
   the same order and charge the same counters. *)
let delivered_str = function
  | Update.Delivered { sender; receiver; significant; forwarded } ->
      Some
        (Printf.sprintf "%d->%d sig=%b fwd=%b" sender receiver significant
           forwarded)
  | Update.Dropped _ | Update.Delayed _ | Update.Round _ | Update.Repaired _
    ->
      None

let bumped_summary setup =
  let base =
    Network.raw_local_summary setup.Trial.network setup.Trial.origin
  in
  let by_topic = Array.copy base.Summary.by_topic in
  by_topic.(0) <- by_topic.(0) +. 5.;
  Summary.make ~total:(base.Summary.total +. 5.) ~by_topic

let test_engine_wave_matches_sync () =
  for trial = 0 to 2 do
    let s1 = Trial.build ~purpose:Trial.For_update eri_cfg ~trial in
    let events1 = ref [] in
    let counters1 = Message.create () in
    Update.local_change
      ~on_event:(fun e -> events1 := e :: !events1)
      s1.Trial.network ~origin:s1.Trial.origin ~summary:(bumped_summary s1)
      ~counters:counters1;
    let s2 = Trial.build ~purpose:Trial.For_update eri_cfg ~trial in
    let net = s2.Trial.network in
    let n = Network.size net in
    let origin = s2.Trial.origin in
    let events2 = ref [] in
    let counters2 = Message.create () in
    let eng = Engine.create ~nodes:n () in
    let budget =
      let d = ref 0 in
      for v = 0 to n - 1 do
        d := !d + Network.degree net v
      done;
      20 * (n + !d)
    in
    let reached = Bytes.make n '\000' in
    Bytes.set reached origin '\001';
    let wave_id = Network.fresh_wave net in
    let sent = ref 0 in
    let rec send_seed (seed : Update.wave_seed) =
      if
        Network.has_link net seed.Update.sender seed.Update.receiver
        && !sent < budget
      then begin
        incr sent;
        counters2.Message.update_messages <-
          counters2.Message.update_messages + 1;
        counters2.Message.update_wire_bytes <-
          counters2.Message.update_wire_bytes + Update.wire_cost seed;
        Engine.send eng ~dst:seed.Update.receiver (fun () ->
            Update.deliver_one
              ~on_event:(fun e -> events2 := e :: !events2)
              net ~reached ~wave_id ~forward:send_seed seed)
      end
    in
    let summary = bumped_summary s2 in
    Engine.inject eng ~at:0 ~dst:origin (fun () ->
        List.iter send_seed
          (Update.seeds_for_change net ~at:origin ~except:[]
             ~mutate:(fun () -> Network.set_local_summary net origin summary)));
    Engine.run eng;
    let deliveries evs = List.rev !evs |> List.filter_map delivered_str in
    Alcotest.(check (list string))
      "same deliveries in the same order" (deliveries events1)
      (deliveries events2);
    Alcotest.(check int) "same message count"
      counters1.Message.update_messages counters2.Message.update_messages;
    Alcotest.(check int) "same wire bytes" counters1.Message.update_wire_bytes
      counters2.Message.update_wire_bytes;
    Alcotest.(check bool) "wave went somewhere" true
      (counters1.Message.update_messages > 0)
  done

(* ------------------------------------------------------------------ *)
(* Workload: Poisson gaps and Zipf popularity.                         *)

let test_poisson_mean () =
  let rng = Prng.create 11 in
  let rate = 5. in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let gap = Workload.poisson_next rng ~rate in
    Alcotest.(check bool) "gap positive" true (gap > 0.);
    sum := !sum +. gap
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 1/rate" true
    (Float.abs (mean -. (1. /. rate)) < 0.01)

let test_poisson_rejects_bad_rate () =
  let rng = Prng.create 1 in
  List.iter
    (fun rate ->
      match Workload.poisson_next rng ~rate with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "rate %g accepted" rate)
    [ 0.; -1.; Float.nan ]

let test_zipf_pmf () =
  let universe = Topic.make 10 in
  let z = Workload.Zipf.create ~exponent:1. universe in
  let pmf = Workload.Zipf.pmf z in
  Alcotest.(check int) "full support" 10 (Array.length pmf);
  Alcotest.(check (float 1e-9)) "normalized" 1.
    (Array.fold_left ( +. ) 0. pmf);
  Alcotest.(check (float 1e-9)) "rank 0 twice rank 1" 2.
    (pmf.(0) /. pmf.(1));
  let u = Workload.Zipf.pmf (Workload.Zipf.create ~exponent:0. universe) in
  Alcotest.(check (float 1e-9)) "exponent 0 is uniform" 0.1 u.(3)

let test_zipf_draw_frequencies () =
  let universe = Topic.make 10 in
  let z = Workload.Zipf.create ~exponent:1. universe in
  let pmf = Workload.Zipf.pmf z in
  let rng = Prng.create 23 in
  let n = 50_000 in
  let counts = Array.make 10 0 in
  for _ = 1 to n do
    let t = Workload.Zipf.draw z rng in
    counts.(t) <- counts.(t) + 1
  done;
  Alcotest.(check int) "draw counter" n (Workload.Zipf.draws z);
  Array.iteri
    (fun i c ->
      let observed = float_of_int c /. float_of_int n in
      if Float.abs (observed -. pmf.(i)) > 0.015 then
        Alcotest.failf "rank %d: observed %.4f vs pmf %.4f" i observed pmf.(i))
    counts

let test_zipf_shift () =
  let universe = Topic.make 10 in
  let z = Workload.Zipf.create ~exponent:1. ~shift_every:100 universe in
  Alcotest.(check int) "rank 0 maps to topic 0" 0
    (Workload.Zipf.topic_of_rank z 0);
  let rng = Prng.create 3 in
  for _ = 1 to 250 do
    ignore (Workload.Zipf.draw z rng)
  done;
  (* 250 draws / shift_every 100 = 2 rotations. *)
  Alcotest.(check int) "hot rank rotated" 2 (Workload.Zipf.topic_of_rank z 0);
  Alcotest.(check int) "wraps modulo the universe" 1
    (Workload.Zipf.topic_of_rank z 9)

let test_zipf_rejects_bad_args () =
  let universe = Topic.make 5 in
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad Zipf argument accepted")
    [
      (fun () -> Workload.Zipf.create ~exponent:(-1.) universe);
      (fun () -> Workload.Zipf.create ~exponent:Float.nan universe);
      (fun () -> Workload.Zipf.create ~shift_every:(-1) universe);
    ]

(* ------------------------------------------------------------------ *)
(* Traffic driver: determinism and option validation.                  *)

let fast_opts =
  {
    Traffic.default_opts with
    Traffic.o_qps = [ 200. ];
    o_duration = 0.1;
    o_service_rate = 5000.;
    o_link_latency = 0.1;
    o_update_rate = 20.;
    o_trials = 3;
  }

let test_simulate_deterministic () =
  let a = Traffic.simulate eri_cfg ~opts:fast_opts ~qps:200. ~trial:0 in
  let b = Traffic.simulate eri_cfg ~opts:fast_opts ~qps:200. ~trial:0 in
  Alcotest.(check int) "arrivals" a.Traffic.r_arrivals b.Traffic.r_arrivals;
  Alcotest.(check int) "completed" a.Traffic.r_completed
    b.Traffic.r_completed;
  Alcotest.(check int) "messages" a.Traffic.r_messages b.Traffic.r_messages;
  Alcotest.(check int) "update messages" a.Traffic.r_update_messages
    b.Traffic.r_update_messages;
  Alcotest.(check int) "queue peak" a.Traffic.r_queue_peak
    b.Traffic.r_queue_peak;
  Alcotest.(check (float 0.)) "makespan" a.Traffic.r_makespan_s
    b.Traffic.r_makespan_s;
  Alcotest.(check string) "latency sketch byte-identical"
    (Sketch.encode a.Traffic.r_sketch)
    (Sketch.encode b.Traffic.r_sketch);
  Alcotest.(check bool) "queries completed" true (a.Traffic.r_completed > 0);
  Alcotest.(check bool) "updates flowed" true
    (a.Traffic.r_update_messages > 0)

let traffic_trace_run jobs =
  let prev = Pool.jobs (Pool.global ()) in
  Pool.set_global_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Pool.set_global_jobs prev)
    (fun () ->
      Trace.clear ();
      Trace.start ();
      let points =
        Fun.protect ~finally:Trace.stop (fun () ->
            Traffic.sweep ~opts:fast_opts eri_cfg ())
      in
      let jsonl = Trace.render_jsonl () in
      Trace.clear ();
      (points, jsonl))

let test_traffic_trace_bit_identical () =
  let points1, jsonl1 = traffic_trace_run 1 in
  let points4, jsonl4 = traffic_trace_run 4 in
  Alcotest.(check bool) "trace not empty" true (String.length jsonl1 > 0);
  Alcotest.(check bool) "query hops recorded" true
    (Astring.String.is_infix ~affix:"\"name\":\"forward\"" jsonl1);
  Alcotest.(check bool) "update hops recorded" true
    (Astring.String.is_infix ~affix:"\"name\":\"update_hop\"" jsonl1);
  Alcotest.(check bool) "completions recorded" true
    (Astring.String.is_infix ~affix:"\"name\":\"complete\"" jsonl1);
  Alcotest.(check string) "traces byte-identical at jobs 1 vs 4" jsonl1
    jsonl4;
  Alcotest.(check string) "points identical at jobs 1 vs 4"
    (Traffic.json_of ~opts:fast_opts points1)
    (Traffic.json_of ~opts:fast_opts points4)

let test_sweep_shape () =
  let opts = { fast_opts with Traffic.o_qps = [ 100.; 400. ]; o_trials = 1 } in
  let points = Traffic.sweep ~opts eri_cfg () in
  Alcotest.(check int) "one point per rate" 2 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "p50 <= p95" true
        (p.Traffic.q_p50_ms <= p.Traffic.q_p95_ms);
      Alcotest.(check bool) "p95 <= p99" true
        (p.Traffic.q_p95_ms <= p.Traffic.q_p99_ms);
      Alcotest.(check bool) "completed all arrivals" true
        (p.Traffic.q_completed = p.Traffic.q_arrivals);
      Alcotest.(check bool) "makespan covers the window" true
        (p.Traffic.q_makespan_s >= opts.Traffic.o_duration))
    points;
  let report = Traffic.report_of points in
  Alcotest.(check int) "report rows" 2
    (List.length report.Ri_experiments.Report.rows)

(* ------------------------------------------------------------------ *)
(* Traffic observatory: depth conventions, decomposition, hotspots,    *)
(* timeline.                                                           *)

(* Pin the one depth definition (satellite of the observatory PR):
   depth = waiting messages excluding the one in service; queue_mean
   samples at arrival BEFORE the arriver joins; queue_peak samples
   AFTER it joins; the per-node fields use the same definition and the
   globals are folds of them. *)
let test_queue_depth_conventions () =
  let eng = Engine.create ~service_ns:10 ~nodes:2 () in
  for _ = 1 to 3 do
    Engine.inject eng ~at:0 ~dst:0 ignore
  done;
  Engine.run eng;
  (* Arrival depths seen: 0 (goes straight to service), 0 (mailbox
     empty, server busy -> joins, peak 1), 1 (-> peak 2). *)
  Alcotest.(check int) "global peak counts the joined arrival" 2
    (Engine.queue_peak eng);
  Alcotest.(check (float 1e-9)) "global mean samples before joining"
    (1. /. 3.) (Engine.queue_mean eng);
  let s = Engine.node_stat eng 0 in
  Alcotest.(check int) "per-node arrivals" 3 s.Engine.s_arrivals;
  Alcotest.(check int) "per-node completions" 3 s.Engine.s_completions;
  Alcotest.(check int) "per-node peak = global peak" 2 s.Engine.s_peak;
  Alcotest.(check int) "per-node depth sum (0+0+1)" 1 s.Engine.s_depth_sum;
  (* Waits: 0, 10 (enq at 0, service starts at 10), 20. *)
  Alcotest.(check int) "per-node queue-wait ns" 30 s.Engine.s_wait_ns;
  Alcotest.(check int) "per-node busy ns" 30 s.Engine.s_busy_ns;
  let idle = Engine.node_stat eng 1 in
  Alcotest.(check int) "idle node untouched" 0 idle.Engine.s_arrivals;
  Alcotest.(check int) "backlog drains to zero" 0 (Engine.backlog eng);
  match Engine.node_stat eng 2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range node_stat accepted"

(* The decomposition invariant: queue + service + link sums exactly to
   end-to-end, in integer nanoseconds, over every completed query —
   with and without interleaved update waves sharing the mailboxes. *)
let test_decomposition_exact () =
  List.iter
    (fun opts ->
      List.iter
        (fun trial ->
          let r = Traffic.simulate eri_cfg ~opts ~qps:400. ~trial in
          let d = r.Traffic.r_decomp in
          Alcotest.(check int) "one record per completed query"
            r.Traffic.r_completed d.Observatory.d_queries;
          Alcotest.(check bool) "queue+service+link = end-to-end" true
            (Observatory.decomp_exact d);
          Alcotest.(check bool) "components non-negative" true
            (d.Observatory.d_queue_ns >= 0
            && d.Observatory.d_service_ns > 0
            && d.Observatory.d_link_ns >= 0);
          (* Every completed query names exactly one critical hop. *)
          Alcotest.(check int) "critical hops sum to completions"
            r.Traffic.r_completed
            (Array.fold_left ( + ) 0 r.Traffic.r_nodes.Observatory.a_critical))
        [ 0; 1 ])
    [ fast_opts; { fast_opts with Traffic.o_update_rate = 0. } ]

(* The same invariant as a property: whatever the load, capacity, link
   delay or trial, the split never leaks a nanosecond. *)
let prop_decomposition_exact =
  QCheck.Test.make ~name:"decomposition sums exactly under random loads"
    ~count:8
    QCheck.(
      quad (float_range 50. 2000.) (float_range 2000. 20000.)
        (float_range 0. 0.5) (int_range 0 2))
    (fun (qps, service_rate, link_latency, trial) ->
      let opts =
        {
          fast_opts with
          Traffic.o_service_rate = service_rate;
          o_link_latency = link_latency;
        }
      in
      let r = Traffic.simulate eri_cfg ~opts ~qps ~trial in
      Observatory.decomp_exact r.Traffic.r_decomp
      && r.Traffic.r_decomp.Observatory.d_queries = r.Traffic.r_completed)

(* With no update traffic every mailbox delivery belongs to a query, so
   the engine's per-node attribution must reconcile exactly with the
   decomposition totals — and the globals with the per-node folds. *)
let test_node_attribution_consistent () =
  let opts = { fast_opts with Traffic.o_update_rate = 0. } in
  let r = Traffic.simulate eri_cfg ~opts ~qps:400. ~trial:0 in
  let acc = r.Traffic.r_nodes in
  let sum a = Array.fold_left ( + ) 0 a in
  Alcotest.(check int) "per-node waits fold to the decomposition"
    r.Traffic.r_decomp.Observatory.d_queue_ns
    (sum acc.Observatory.a_wait_ns);
  Alcotest.(check int) "per-node busy folds to the decomposition"
    r.Traffic.r_decomp.Observatory.d_service_ns
    (sum acc.Observatory.a_busy_ns);
  Alcotest.(check int) "global peak = max per-node peak"
    r.Traffic.r_queue_peak
    (Array.fold_left max 0 acc.Observatory.a_peak);
  Alcotest.(check bool) "traffic reached several nodes" true
    (Array.to_seq acc.Observatory.a_arrivals
    |> Seq.filter (fun a -> a > 0)
    |> Seq.length > 1)

let test_hotspot_ranking () =
  let acc = Observatory.acc_create 4 in
  (* node 1: most wait; node 3: less wait; node 0: busy only; 2: idle *)
  acc.Observatory.a_arrivals.(0) <- 5;
  acc.Observatory.a_busy_ns.(0) <- 500;
  acc.Observatory.a_arrivals.(1) <- 9;
  acc.Observatory.a_wait_ns.(1) <- 900;
  acc.Observatory.a_peak.(1) <- 7;
  acc.Observatory.a_arrivals.(3) <- 2;
  acc.Observatory.a_wait_ns.(3) <- 100;
  let hs = Observatory.hotspots acc ~makespan_ns:1000 ~k:3 in
  Alcotest.(check (list int)) "wait-ns ranking, idle node excluded"
    [ 1; 3; 0 ]
    (List.map (fun h -> h.Observatory.h_node) hs);
  Alcotest.(check (float 1e-9)) "utilization = busy/makespan" 0.5
    (List.nth hs 2).Observatory.h_utilization;
  Alcotest.(check int) "k caps the table" 1
    (List.length (Observatory.hotspots acc ~makespan_ns:1000 ~k:1));
  Alcotest.(check (list int)) "k=0 hides it" []
    (List.map
       (fun h -> h.Observatory.h_node)
       (Observatory.hotspots acc ~makespan_ns:1000 ~k:0));
  (* merge: sums element-wise, peak with max *)
  let acc2 = Observatory.acc_create 4 in
  acc2.Observatory.a_wait_ns.(1) <- 50;
  acc2.Observatory.a_peak.(1) <- 3;
  Observatory.acc_merge ~into:acc acc2;
  Alcotest.(check int) "wait merged by sum" 950 acc.Observatory.a_wait_ns.(1);
  Alcotest.(check int) "peak merged by max" 7 acc.Observatory.a_peak.(1);
  match Observatory.acc_merge ~into:acc (Observatory.acc_create 3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "size-mismatched merge accepted"

let test_timeline_clamps () =
  Observatory.clear ();
  Observatory.start ();
  Fun.protect
    ~finally:(fun () ->
      Observatory.stop ();
      Observatory.clear ())
    (fun () ->
      Observatory.with_trial ~trial:0 (fun sink ->
          let tl = Observatory.Timeline.create ~bins:4 ~width_ns:10 in
          Observatory.Timeline.arrival tl ~at:0 ~depth:2;
          Observatory.Timeline.arrival tl ~at:35 ~depth:1;
          (* past the last bin: the drain overhang clamps into it *)
          Observatory.Timeline.completion tl ~at:400 ~depth:0;
          Observatory.Timeline.flush tl sink);
      let jsonl = Observatory.render_jsonl () in
      let lines =
        String.split_on_char '\n' jsonl
        |> List.filter (fun l -> String.trim l <> "")
      in
      (* bins 0 and 3 are non-empty; 1 and 2 are skipped *)
      Alcotest.(check int) "only non-empty bins exported" 2
        (List.length lines);
      Alcotest.(check bool) "bin 0 carries its arrival and depth" true
        (Astring.String.is_infix
           ~affix:
             "\"bin\":0,\"start_ns\":0,\"width_ns\":10,\"arrivals\":1,\
              \"completions\":0,\"depth_sum\":2,\"samples\":1,\
              \"depth_peak\":2"
           jsonl);
      Alcotest.(check bool) "overhang clamped into the last bin" true
        (Astring.String.is_infix
           ~affix:"\"bin\":3,\"start_ns\":30,\"width_ns\":10,\"arrivals\":1,\
                   \"completions\":1"
           jsonl));
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad Timeline.create accepted")
    [
      (fun () -> Observatory.Timeline.create ~bins:0 ~width_ns:10);
      (fun () -> Observatory.Timeline.create ~bins:4 ~width_ns:0);
    ]

(* The recorder only reads engine state: a simulation with timeline
   recording on must be bit-identical to one with it off. *)
let test_recording_does_not_perturb () =
  let off = Traffic.simulate eri_cfg ~opts:fast_opts ~qps:200. ~trial:0 in
  Observatory.clear ();
  Observatory.start ();
  let on_ =
    Fun.protect
      ~finally:(fun () ->
        Observatory.stop ();
        Observatory.clear ())
      (fun () -> Traffic.simulate eri_cfg ~opts:fast_opts ~qps:200. ~trial:0)
  in
  Alcotest.(check string) "sketch bytes identical with recording on"
    (Sketch.encode off.Traffic.r_sketch)
    (Sketch.encode on_.Traffic.r_sketch);
  Alcotest.(check int) "same completions" off.Traffic.r_completed
    on_.Traffic.r_completed;
  Alcotest.(check int) "same decomposition total"
    off.Traffic.r_decomp.Observatory.d_total_ns
    on_.Traffic.r_decomp.Observatory.d_total_ns

let traffic_timeline_run jobs =
  let prev = Pool.jobs (Pool.global ()) in
  Pool.set_global_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Pool.set_global_jobs prev)
    (fun () ->
      Observatory.clear ();
      Observatory.start ();
      let points =
        Fun.protect ~finally:Observatory.stop (fun () ->
            Traffic.sweep ~opts:fast_opts eri_cfg ())
      in
      let jsonl = Observatory.render_jsonl () in
      Observatory.clear ();
      (points, jsonl))

let test_timeline_bit_identical () =
  let points1, jsonl1 = traffic_timeline_run 1 in
  let points4, jsonl4 = traffic_timeline_run 4 in
  Alcotest.(check bool) "timeline not empty" true (String.length jsonl1 > 0);
  Alcotest.(check string) "timeline byte-identical at jobs 1 vs 4" jsonl1
    jsonl4;
  Alcotest.(check string)
    "points (incl. hotspots) identical at jobs 1 vs 4"
    (Traffic.json_of ~opts:fast_opts points1)
    (Traffic.json_of ~opts:fast_opts points4);
  (* every trial of the sweep's one point flushed a timeline *)
  List.iter
    (fun trial ->
      Alcotest.(check bool)
        (Printf.sprintf "trial %d present" trial)
        true
        (Astring.String.is_infix
           ~affix:(Printf.sprintf "\"trial\":%d," trial)
           jsonl1))
    [ 0; 1; 2 ]

(* Past the knee the decomposition must attribute the latency growth to
   queue-wait, concentrated on the top-K hotspot nodes. *)
let test_knee_attribution () =
  let opts =
    { fast_opts with Traffic.o_qps = [ 200.; 4000. ]; o_update_rate = 0. }
  in
  match Traffic.sweep ~opts eri_cfg () with
  | [ calm; hot ] ->
      Alcotest.(check bool) "high rate saturates" true hot.Traffic.q_saturated;
      Alcotest.(check bool) "low rate does not" false calm.Traffic.q_saturated;
      Alcotest.(check bool) "queue-wait dominates past the knee" true
        (hot.Traffic.q_queue_share > 0.5);
      Alcotest.(check bool) "queue share grew with load" true
        (hot.Traffic.q_queue_share > calm.Traffic.q_queue_share);
      Alcotest.(check bool) "service+link stay flat across load" true
        (Float.abs
           (hot.Traffic.q_service_ms +. hot.Traffic.q_link_ms
           -. (calm.Traffic.q_service_ms +. calm.Traffic.q_link_ms))
        < 0.5
           *. (calm.Traffic.q_service_ms +. calm.Traffic.q_link_ms));
      let hs = hot.Traffic.q_hotspots in
      Alcotest.(check int) "top-K table filled" opts.Traffic.o_hotspots
        (List.length hs);
      Alcotest.(check bool) "ranked by accumulated queue-wait" true
        (let rec sorted = function
           | a :: (b :: _ as tl) ->
               a.Observatory.h_wait_ns >= b.Observatory.h_wait_ns && sorted tl
           | _ -> true
         in
         sorted hs);
      let top = List.hd hs in
      Alcotest.(check bool) "top hotspot accumulated real wait" true
        (top.Observatory.h_wait_ns > 0);
      Alcotest.(check bool) "top hotspot took critical hops" true
        (top.Observatory.h_critical > 0);
      Alcotest.(check bool) "utilization in (0, 1]" true
        (top.Observatory.h_utilization > 0.
        && top.Observatory.h_utilization <= 1.)
  | points -> Alcotest.failf "expected 2 points, got %d" (List.length points)

let test_invalid_opts_rejected () =
  List.iter
    (fun opts ->
      match Traffic.measure ~opts eri_cfg ~qps:100. with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "invalid traffic opts accepted")
    [
      { fast_opts with Traffic.o_duration = 0. };
      { fast_opts with Traffic.o_service_rate = 0. };
      { fast_opts with Traffic.o_link_latency = -1. };
      { fast_opts with Traffic.o_qps = [] };
      { fast_opts with Traffic.o_qps = [ -5. ] };
      { fast_opts with Traffic.o_trials = 0 };
      { fast_opts with Traffic.o_snapshot = Some "x.risnap" };
      (* snapshot with trials <> 1 *)
      { fast_opts with Traffic.o_hotspots = -1 };
      { fast_opts with Traffic.o_timeline_bins = 0 };
    ];
  match
    Traffic.simulate
      (Config.with_search small (Config.Flooding { ttl = None }))
      ~opts:fast_opts ~qps:100. ~trial:0
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "flooding traffic accepted"

let suite =
  ( "traffic",
    [
      Alcotest.test_case "heap pops (time, seq)" `Quick test_heap_tiebreak;
      Alcotest.test_case "heap stress stays sorted" `Quick
        test_heap_stress_sorted;
      Alcotest.test_case "scheduling into the past rejected" `Quick
        test_schedule_past_rejected;
      Alcotest.test_case "mailbox FIFO service" `Quick test_mailbox_service;
      Alcotest.test_case "link latency per hop" `Quick test_link_latency;
      Alcotest.test_case "zero-latency Step replays Query.run (RI)" `Quick
        test_step_matches_run_ri;
      Alcotest.test_case "zero-latency Step replays Query.run (random walk)"
        `Quick test_step_matches_run_random_walk;
      Alcotest.test_case "zero-latency engine wave replays local_change"
        `Quick test_engine_wave_matches_sync;
      Alcotest.test_case "poisson gaps average 1/rate" `Quick
        test_poisson_mean;
      Alcotest.test_case "poisson rejects bad rates" `Quick
        test_poisson_rejects_bad_rate;
      Alcotest.test_case "zipf pmf shape" `Quick test_zipf_pmf;
      Alcotest.test_case "zipf draws follow the pmf" `Quick
        test_zipf_draw_frequencies;
      Alcotest.test_case "zipf popularity shifts" `Quick test_zipf_shift;
      Alcotest.test_case "zipf rejects bad arguments" `Quick
        test_zipf_rejects_bad_args;
      Alcotest.test_case "simulate is deterministic" `Quick
        test_simulate_deterministic;
      Alcotest.test_case "traffic traces byte-identical across jobs" `Quick
        test_traffic_trace_bit_identical;
      Alcotest.test_case "sweep shape and quantile ordering" `Quick
        test_sweep_shape;
      Alcotest.test_case "queue depth conventions pinned" `Quick
        test_queue_depth_conventions;
      Alcotest.test_case "latency decomposition is exact" `Quick
        test_decomposition_exact;
      QCheck_alcotest.to_alcotest prop_decomposition_exact;
      Alcotest.test_case "per-node attribution reconciles" `Quick
        test_node_attribution_consistent;
      Alcotest.test_case "hotspot ranking and merging" `Quick
        test_hotspot_ranking;
      Alcotest.test_case "timeline bins clamp and flush" `Quick
        test_timeline_clamps;
      Alcotest.test_case "recording does not perturb the run" `Quick
        test_recording_does_not_perturb;
      Alcotest.test_case "timeline byte-identical across jobs" `Quick
        test_timeline_bit_identical;
      Alcotest.test_case "past the knee, queue-wait dominates" `Quick
        test_knee_attribution;
      Alcotest.test_case "invalid options rejected" `Quick
        test_invalid_opts_rejected;
    ] )
