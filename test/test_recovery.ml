(* Partition & recovery plane: crash-recovery rejoin (amnesiac and
   stale-state), persist/restore bit-identity, anti-entropy
   reconvergence and idempotence, partition sever/heal semantics,
   pool-width bit-identity of recovery trials, and the chaos checker's
   sabotage self-test. *)

open Ri_content
open Ri_core
open Ri_topology
open Ri_p2p
open Ri_sim

(* A small line network: 0-1-2-...-(n-1), one topic, one document per
   node — the same fixture as Test_fault, where every RI fixpoint is
   easy to reason about. *)
let line_net n =
  let graph = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let content =
    {
      Network.summary = (fun _ -> Summary.of_counts ~total:1 ~by_topic:[| 1 |]);
      count_matching = (fun _ _ -> 1);
    }
  in
  Network.create ~graph ~content ~scheme:Scheme.Cri_kind ()

let line_neighbors n v =
  Array.of_list
    (List.filter (fun u -> u >= 0 && u < n) [ v - 1; v + 1 ])

let rows_snapshot net =
  List.init (Network.size net) (fun v ->
      List.map
        (fun p -> (p, Scheme.row (Network.ri net v) ~peer:p))
        (Scheme.peers (Network.ri net v)))

(* No planned crashes: these unit tests kill nodes by hand with
   [Churn.crash_stop] so the corpse set is exactly what the test says —
   a [crash] probability would add plan-dead victims that anti-entropy's
   failure detector would then repair, wrecking fixpoint comparisons. *)
let recovery_spec =
  { Fault.none with Fault.retries = 1; backoff = 0; stale_after = Some 1 }

let ae_to_quiescence ?(cap = 64) ~plan net =
  let counters = Message.create () in
  let rounds = ref 0 and last = ref 1 in
  while !last > 0 && !rounds < cap do
    last := Update.anti_entropy ~plan net ~counters;
    incr rounds
  done;
  (!rounds, !last)

let test_persist_restore_roundtrip () =
  let net = line_net 7 in
  let plan = Fault.make recovery_spec ~seed:5 ~trial:0 ~nodes:7 ~protect:[ 0 ] in
  let before = List.nth (rows_snapshot net) 3 in
  let image = Churn.persist_rows net 3 in
  Churn.crash_stop net 3 ~plan;
  Churn.recover net 3 ~rejoin:(Churn.Stale_state image) ~plan
    ~counters:(Message.create ());
  Alcotest.(check bool) "node alive again" false (Fault.is_dead plan 3);
  Alcotest.(check bool) "rows restored bit-identically" true
    (List.nth (rows_snapshot net) 3 = before)

let test_persist_rejects_corrupt () =
  let net = line_net 7 in
  let plan = Fault.make recovery_spec ~seed:5 ~trial:0 ~nodes:7 ~protect:[ 0 ] in
  let image = Churn.persist_rows net 3 in
  Bytes.set image 0 'X';
  Churn.crash_stop net 3 ~plan;
  Alcotest.check_raises "corrupt magic rejected"
    (Invalid_argument "Churn.recover: corrupt stale state: bad magic")
    (fun () ->
      Churn.recover net 3 ~rejoin:(Churn.Stale_state image) ~plan
        ~counters:(Message.create ()))

(* Both rejoin flavors must converge back to the pre-crash fixpoint
   once anti-entropy runs dry: the content never changed, so the
   fault-free rows *are* the unique fixpoint. *)
let rejoin_converges rejoin_of () =
  let net = line_net 9 in
  let fixpoint = rows_snapshot net in
  let plan = Fault.make recovery_spec ~seed:7 ~trial:0 ~nodes:9 ~protect:[ 0 ] in
  let image = Churn.persist_rows net 4 in
  Churn.crash_stop net 4 ~plan;
  (* Both neighbors notice the silence and repair their indices — the
     usual lazy path a query's timeouts would take. *)
  ignore (Churn.detect_crash net 3 ~dead:4 ~plan);
  ignore (Churn.detect_crash net 5 ~dead:4 ~plan);
  Alcotest.(check bool) "corpse rows removed" true
    (Scheme.row (Network.ri net 3) ~peer:4 = None
    && Scheme.row (Network.ri net 5) ~peer:4 = None);
  Churn.recover net 4 ~rejoin:(rejoin_of image) ~plan
    ~counters:(Message.create ());
  let rounds, last = ae_to_quiescence ~plan net in
  Alcotest.(check int) "anti-entropy ran dry" 0 last;
  Alcotest.(check bool) "a repair round happened" true (rounds >= 1);
  Alcotest.(check bool) "rows equal the pre-crash fixpoint" true
    (rows_snapshot net = fixpoint)

let test_amnesiac_rejoin_converges () =
  rejoin_converges (fun _ -> Churn.Amnesiac) ()

let test_stale_rejoin_converges () =
  rejoin_converges (fun image -> Churn.Stale_state image) ()

let test_anti_entropy_idempotent () =
  (* On a healthy, gap-free network a round repairs nothing and changes
     nothing — anti-entropy triggers on recorded gaps and dirt, never
     on content comparison (a content-triggered reconciler would chase
     its own tail on cyclic overlays). *)
  let net = line_net 7 in
  let plan = Fault.make recovery_spec ~seed:9 ~trial:0 ~nodes:7 ~protect:[ 0 ] in
  let before = rows_snapshot net in
  let counters = Message.create () in
  Alcotest.(check int) "no repairs on a healthy network" 0
    (Update.anti_entropy ~plan net ~counters);
  Alcotest.(check bool) "rows untouched" true (rows_snapshot net = before);
  (* Each of the 6 links costs exactly its two digest probes — a round
     that repaired nothing must charge nothing beyond the digests. *)
  Alcotest.(check int) "digest probes only, no full exchanges" 12
    counters.Message.update_messages;
  Alcotest.(check int) "digest-sized wire cost only"
    (12 * Message.wire_digest_bytes)
    counters.Message.update_wire_bytes

let partition_spec frac =
  { Fault.none with Fault.partition = frac; retries = 1; backoff = 0 }

let test_partition_severs_and_heals () =
  let n = 9 in
  let net = line_net n in
  let fixpoint = rows_snapshot net in
  let plan =
    Fault.make (partition_spec 0.3) ~neighbors:(line_neighbors n) ~seed:3
      ~trial:0 ~nodes:n ~protect:[]
  in
  Alcotest.(check bool) "cut active" true (Fault.partitioned plan);
  let cut = Fault.cut_size plan in
  Alcotest.(check bool) "minority side populated, strict" true
    (cut > 0 && cut < n);
  (* [same_side] is an equivalence: symmetric, reflexive. *)
  for u = 0 to n - 1 do
    Alcotest.(check bool) "reflexive" true (Fault.same_side plan u u);
    for v = 0 to n - 1 do
      Alcotest.(check bool) "symmetric" (Fault.same_side plan u v)
        (Fault.same_side plan v u)
    done
  done;
  (* A wave from one side never changes rows across the cut, and both
     endpoints of every severed hop record the gap. *)
  let origin = 0 in
  let other v = not (Fault.same_side plan origin v) in
  let before_other =
    List.filteri (fun v _ -> other v) (rows_snapshot net)
  in
  Update.local_change ~plan net ~origin
    ~summary:(Summary.of_counts ~total:50 ~by_topic:[| 50 |])
    ~counters:(Message.create ());
  let after_other = List.filteri (fun v _ -> other v) (rows_snapshot net) in
  Alcotest.(check bool) "far side frozen" true (after_other = before_other);
  Alcotest.(check bool) "partition drops counted" true
    ((Fault.stats plan).Fault.partition_drops > 0);
  (* Heal, then run anti-entropy dry: the gap ledger drives repairs
     across the former cut and the whole line reconverges on the new
     content's fixpoint. *)
  Fault.heal_partition plan;
  Alcotest.(check bool) "cut gone" false (Fault.partitioned plan);
  let _, last = ae_to_quiescence ~plan net in
  Alcotest.(check int) "anti-entropy ran dry" 0 last;
  (* Replay the same change on a clean twin for the expected rows. *)
  let clean = line_net n in
  Update.local_change clean ~origin
    ~summary:(Summary.of_counts ~total:50 ~by_topic:[| 50 |])
    ~counters:(Message.create ());
  Alcotest.(check bool) "healed network reaches the clean fixpoint" true
    (rows_snapshot net = rows_snapshot clean);
  Alcotest.(check bool) "fixpoint actually moved" true
    (rows_snapshot net <> fixpoint)

let test_auto_heal_after_waves () =
  let n = 9 in
  let net = line_net n in
  let spec = { (partition_spec 0.3) with Fault.heal_after = Some 1 } in
  let plan =
    Fault.make spec ~neighbors:(line_neighbors n) ~seed:3 ~trial:0 ~nodes:n
      ~protect:[]
  in
  Alcotest.(check bool) "cut active" true (Fault.partitioned plan);
  let bump total =
    Update.local_change ~plan net ~origin:0
      ~summary:(Summary.of_counts ~total ~by_topic:[| total |])
      ~counters:(Message.create ())
  in
  bump 10;
  Alcotest.(check bool) "survives the first wave" true
    (Fault.partitioned plan);
  bump 20;
  Alcotest.(check bool) "auto-heals on the next" false
    (Fault.partitioned plan)

(* The recovery trial must be bit-identical at any pool width — trials
   inside the runner wave run on domains, and every fault/recovery
   stream is keyed by (seed, trial), never by scheduling. *)
let with_jobs jobs f =
  let prev = Ri_util.Pool.jobs (Ri_util.Pool.global ()) in
  Ri_util.Pool.set_global_jobs jobs;
  Fun.protect ~finally:(fun () -> Ri_util.Pool.set_global_jobs prev) f

let recovery_cfg =
  let cfg = Config.scaled Config.base ~num_nodes:120 in
  {
    cfg with
    Config.fault =
      {
        Fault.none with
        Fault.update_loss = 0.1;
        crash = 0.1;
        drift = 0.5;
        partition = 0.3;
        stale_after = Some 1;
        retries = 2;
        backoff = 1;
        query_budget = Some 240;
      };
  }

let run_recovery_digest () =
  Setup_cache.clear ();
  List.init 3 (fun trial ->
      let m = Trial.run_recovery recovery_cfg ~trial in
      ( m.Trial.r_dip.Trial.messages,
        m.Trial.r_restored.Trial.messages,
        m.Trial.r_clean_found,
        m.Trial.r_dip_recall,
        m.Trial.r_restored_recall,
        m.Trial.r_cut_size,
        m.Trial.r_recovered,
        m.Trial.r_ae_rounds,
        m.Trial.r_ae_repairs,
        m.Trial.r_recovery_messages ))

let test_recovery_bit_identical_across_jobs () =
  let seq = with_jobs 1 run_recovery_digest in
  let par = with_jobs 4 run_recovery_digest in
  Alcotest.(check bool) "jobs 1 = jobs 4" true (seq = par)

let test_restored_recall_full () =
  (* With the weather quiesced, the cut healed and every victim
     recovered, the restored query must find the full clean count. *)
  let m = Trial.run_recovery recovery_cfg ~trial:0 in
  Alcotest.(check bool) "dip happened (cut or crash bit)" true
    (m.Trial.r_cut_size > 0 || m.Trial.r_recovered > 0);
  Alcotest.(check (float 1e-9)) "restored recall is 1" 1.
    m.Trial.r_restored_recall

let test_fault_seed_decouples () =
  (* Same fault_seed, different topology seeds: the plan's dead set
     depends only on the fault stream (same node count), so it must be
     identical; without fault_seed the two seeds diverge. *)
  let dead_set ~seed ~fault_seed =
    let plan =
      Fault.make
        { Fault.none with Fault.crash = 0.3 }
        ?fault_seed ~seed ~trial:0 ~nodes:100 ~protect:[]
    in
    List.init 100 (fun v -> Fault.is_dead plan v)
  in
  Alcotest.(check bool) "same fault seed, same victims" true
    (dead_set ~seed:1 ~fault_seed:(Some 99)
    = dead_set ~seed:2 ~fault_seed:(Some 99));
  Alcotest.(check bool) "different master seeds diverge" true
    (dead_set ~seed:1 ~fault_seed:None <> dead_set ~seed:2 ~fault_seed:None)

let test_chaos_clean_and_sabotaged () =
  (* A healthy plane passes a small chaos sweep with zero violations —
     and the sabotage self-test proves the fixpoint invariant has
     teeth (a checker that cannot fail checks nothing). *)
  let o =
    Ri_experiments.Chaos.run ~nodes:60 ~schedules:6 ~steps:8 ~seed:42 ()
  in
  Alcotest.(check int) "no violations on the healthy plane" 0
    (List.length o.Ri_experiments.Chaos.c_violations);
  let s =
    Ri_experiments.Chaos.run ~sabotage:true ~nodes:60 ~schedules:2 ~steps:6
      ~seed:42 ()
  in
  Alcotest.(check bool) "sabotage is caught" true
    (List.exists
       (fun v -> v.Ri_experiments.Chaos.v_invariant = "fixpoint")
       s.Ri_experiments.Chaos.c_violations)

let suite =
  ( "recovery",
    [
      Alcotest.test_case "persist/restore round-trips" `Quick
        test_persist_restore_roundtrip;
      Alcotest.test_case "corrupt stale image rejected" `Quick
        test_persist_rejects_corrupt;
      Alcotest.test_case "amnesiac rejoin converges" `Quick
        test_amnesiac_rejoin_converges;
      Alcotest.test_case "stale-state rejoin converges" `Quick
        test_stale_rejoin_converges;
      Alcotest.test_case "anti-entropy is idempotent" `Quick
        test_anti_entropy_idempotent;
      Alcotest.test_case "partition severs and heals" `Quick
        test_partition_severs_and_heals;
      Alcotest.test_case "auto-heal after waves" `Quick
        test_auto_heal_after_waves;
      Alcotest.test_case "bit-identical across pool widths" `Quick
        test_recovery_bit_identical_across_jobs;
      Alcotest.test_case "restored recall returns to 1" `Quick
        test_restored_recall_full;
      Alcotest.test_case "fault seed decouples the plan" `Quick
        test_fault_seed_decouples;
      Alcotest.test_case "chaos checker: clean + sabotage" `Quick
        test_chaos_clean_and_sabotaged;
    ] )
