(* Exponentially aggregated routing index, validated against Figure 9 of
   the paper.  Topic order: databases, networks, theory, languages. *)

open Ri_content
open Ri_core

let s total by = Summary.of_counts ~total ~by_topic:by

(* Figure 8's locals: X, Y, Z and their leaf children (one child holds
   the whole hop-2 mass; siblings are empty). *)
let local_x = s 60 [| 13; 2; 5; 10 |]
let kids_x = s 20 [| 10; 10; 4; 17 |]
let local_y = s 30 [| 0; 3; 15; 12 |]
let kids_y = s 50 [| 31; 0; 15; 20 |]
let local_z = s 5 [| 2; 0; 3; 3 |]
let kids_z = s 70 [| 10; 40; 20; 50 |]

(* Build a mid node's ERI (fanout 3) from its local index and the
   aggregate of its leaf children, then export toward W. *)
let export_toward_w local kids =
  let t = Eri.create ~fanout:3. ~width:4 ~local () in
  Eri.set_row t ~peer:100 kids;
  Eri.export t ~exclude:None

let check_summary msg expected actual =
  Alcotest.(check (float 0.01)) (msg ^ " total") expected.Summary.total actual.Summary.total;
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 0.01))
        (Printf.sprintf "%s topic %d" msg i)
        v
        (Summary.get actual i))
    expected.Summary.by_topic

let test_figure9_rows () =
  (* "The entries for topic DB for X and Y have the values
     13 + 10/3 = 16.33 and 0 + 31/3 = 10.33" — and the full Figure 9
     table. *)
  check_summary "X"
    (Summary.make ~total:66.67 ~by_topic:[| 16.33; 5.33; 6.33; 15.67 |])
    (export_toward_w local_x kids_x);
  check_summary "Y"
    (Summary.make ~total:46.67 ~by_topic:[| 10.33; 3.00; 20.00; 18.67 |])
    (export_toward_w local_y kids_y);
  check_summary "Z"
    (Summary.make ~total:28.33 ~by_topic:[| 5.33; 13.33; 9.67; 19.67 |])
    (export_toward_w local_z kids_z)

let test_figure9_goodness_ranking () =
  let w = Eri.create ~fanout:3. ~width:4 ~local:(Summary.zero ~topics:4) () in
  Eri.set_row w ~peer:1 (export_toward_w local_x kids_x);
  Eri.set_row w ~peer:2 (export_toward_w local_y kids_y);
  Eri.set_row w ~peer:3 (export_toward_w local_z kids_z);
  Alcotest.(check (float 0.01)) "X db" 16.33 (Eri.goodness w ~peer:1 ~query:[ 0 ]);
  Alcotest.(check (float 0.01)) "Y db" 10.33 (Eri.goodness w ~peer:2 ~query:[ 0 ]);
  Alcotest.(check (float 0.01)) "Z networks" 13.33 (Eri.goodness w ~peer:3 ~query:[ 1 ]);
  Alcotest.(check (float 1e-9)) "unknown peer" 0. (Eri.goodness w ~peer:9 ~query:[ 0 ])

let test_validation () =
  Alcotest.check_raises "fanout" (Invalid_argument "Eri.create: fanout must be > 1")
    (fun () -> ignore (Eri.create ~fanout:1. ~width:4 ~local:(Summary.zero ~topics:4) ()));
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Eri.create: summary width mismatch") (fun () ->
      ignore (Eri.create ~fanout:3. ~width:2 ~local:(Summary.zero ~topics:4) ()))

let test_export_formula () =
  (* export = local + (sum of rows except target) / F. *)
  let t = Eri.create ~fanout:4. ~width:1 ~local:(Summary.make ~total:8. ~by_topic:[| 8. |]) () in
  Eri.set_row t ~peer:1 (Summary.make ~total:12. ~by_topic:[| 12. |]);
  Eri.set_row t ~peer:2 (Summary.make ~total:20. ~by_topic:[| 20. |]);
  let to_peer1 = Eri.export t ~exclude:(Some 1) in
  Alcotest.(check (float 1e-9)) "local + 20/4" 13. to_peer1.Summary.total;
  let to_new = Eri.export t ~exclude:(Some 99) in
  Alcotest.(check (float 1e-9)) "local + 32/4" 16. to_new.Summary.total

let test_decay_over_distance () =
  (* A document mass D observed through a chain of k empty nodes is worth
     D / F^k: geometric decay with distance. *)
  let mass = Summary.make ~total:64. ~by_topic:[| 64. |] in
  let rec chain depth payload =
    if depth = 0 then payload
    else
      let t = Eri.create ~fanout:4. ~width:1 ~local:(Summary.zero ~topics:1) () in
      Eri.set_row t ~peer:0 payload;
      chain (depth - 1) (Eri.export t ~exclude:None)
  in
  let after3 = chain 3 mass in
  Alcotest.(check (float 1e-9)) "64 / 4^3" 1. after3.Summary.total

let test_export_all_pointwise () =
  let t = Eri.create ~fanout:3. ~width:4 ~local:local_x () in
  Eri.set_row t ~peer:1 kids_x;
  Eri.set_row t ~peer:2 kids_y;
  Eri.set_row t ~peer:3 kids_z;
  List.iter
    (fun (peer, batch) ->
      Alcotest.(check bool)
        (Printf.sprintf "peer %d" peer)
        true
        (Summary.approx_equal ~eps:1e-6 batch (Eri.export t ~exclude:(Some peer))))
    (Eri.export_all t)

let test_rows_crud () =
  let t = Eri.create ~fanout:3. ~width:4 ~local:local_x () in
  Eri.set_row t ~peer:7 kids_x;
  Alcotest.(check (list int)) "peers" [ 7 ] (Eri.peers t);
  Eri.remove_row t ~peer:7;
  Alcotest.(check (list int)) "empty" [] (Eri.peers t);
  Eri.set_local t local_y;
  Alcotest.(check bool) "local swapped" true
    (Summary.approx_equal (Eri.local t) local_y)

let suite =
  ( "eri",
    [
      Alcotest.test_case "figure 9 rows" `Quick test_figure9_rows;
      Alcotest.test_case "figure 9 goodness" `Quick test_figure9_goodness_ranking;
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "export formula" `Quick test_export_formula;
      Alcotest.test_case "geometric decay" `Quick test_decay_over_distance;
      Alcotest.test_case "export_all pointwise" `Quick test_export_all_pointwise;
      Alcotest.test_case "rows crud" `Quick test_rows_crud;
    ] )
