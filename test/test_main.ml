(* Aggregated test entry point: one suite per module area. *)

let () =
  Alcotest.run "routing-indices"
    [
      Test_prng.suite;
      Test_stats.suite;
      Test_sampling.suite;
      Test_vecf.suite;
      Test_text_table.suite;
      Test_graph.suite;
      Test_topology.suite;
      Test_content.suite;
      Test_summary.suite;
      Test_compression.suite;
      Test_placement.suite;
      Test_estimator.suite;
      Test_store.suite;
      Test_cost_model.suite;
      Test_cri.suite;
      Test_hri.suite;
      Test_eri.suite;
      Test_scheme.suite;
      Test_message.suite;
      Test_network.suite;
      Test_query.suite;
      Test_update.suite;
      Test_churn.suite;
      Test_fault.suite;
      Test_recovery.suite;
      Test_paper_examples.suite;
      Test_pool.suite;
      Test_json.suite;
      Test_obs.suite;
      Test_sketch.suite;
      Test_provenance.suite;
      Test_sim.suite;
      Test_traffic.suite;
      Test_experiments.suite;
      Test_extensions.suite;
      Test_invariants.suite;
      Test_golden.suite;
      Test_taxonomy.suite;
    ]
