(* Quantile-sketch properties.

   Two contracts matter: merge is associative and commutative *at the
   byte level* (Sketch.encode), which is what makes per-trial sketches
   safe to combine in any order at any pool width; and every quantile
   estimate is within the advertised relative error of the exact
   sorted-reference quantile. *)

open Ri_obs

let encode_testable = Alcotest.string

(* Exactly the rank rule Sketch.quantile implements: the element at
   0-based index ceil(q * (n - 1)) of the sorted multiset. *)
let exact_quantile xs q =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  a.(int_of_float (Float.ceil (q *. float_of_int (n - 1))))

let of_list xs =
  let t = Sketch.create () in
  List.iter (Sketch.add t) xs;
  t

(* Positive observations spanning several decades, the shape of
   latency/byte-count data the sketches actually hold. *)
let pos_list =
  QCheck.(
    list_of_size
      Gen.(int_range 1 400)
      (map Float.exp (float_range (-2.) 14.)))

let prop_testcase = QCheck_alcotest.to_alcotest

let merge_commutative =
  QCheck.Test.make ~count:100 ~name:"merge commutes at byte level"
    QCheck.(pair pos_list pos_list)
    (fun (xs, ys) ->
      let a = of_list xs and b = of_list ys in
      Sketch.encode (Sketch.merge a b) = Sketch.encode (Sketch.merge b a))

let merge_associative =
  QCheck.Test.make ~count:100 ~name:"merge associates at byte level"
    QCheck.(triple pos_list pos_list pos_list)
    (fun (xs, ys, zs) ->
      let a = of_list xs and b = of_list ys and c = of_list zs in
      Sketch.encode (Sketch.merge (Sketch.merge a b) c)
      = Sketch.encode (Sketch.merge a (Sketch.merge b c)))

(* Sharding a stream over k sketches and merging reaches the same bytes
   as observing it sequentially — the pool-width independence the live
   series rely on. *)
let sharding_irrelevant =
  QCheck.Test.make ~count:100 ~name:"sharded merge equals sequential"
    QCheck.(pair (int_range 1 7) pos_list)
    (fun (k, xs) ->
      let shards = Array.init k (fun _ -> Sketch.create ()) in
      List.iteri (fun i x -> Sketch.add shards.(i mod k) x) xs;
      let merged = Array.fold_left Sketch.merge (Sketch.create ()) shards in
      Sketch.encode merged = Sketch.encode (of_list xs))

let quantile_relative_error =
  QCheck.Test.make ~count:100 ~name:"quantiles within alpha of exact" pos_list
    (fun xs ->
      let t = of_list xs in
      let alpha = Sketch.alpha t in
      List.for_all
        (fun q ->
          let est = Sketch.quantile t q in
          let exact = exact_quantile xs q in
          Float.abs (est -. exact) <= (alpha *. exact) +. 1e-9)
        [ 0.; 0.25; 0.5; 0.9; 0.95; 0.99; 0.999; 1. ])

let test_empty () =
  let t = Sketch.create () in
  Alcotest.(check int) "count" 0 (Sketch.count t);
  Alcotest.(check (float 0.)) "quantile" 0. (Sketch.quantile t 0.5);
  Alcotest.(check (float 0.)) "min" 0. (Sketch.min_value t);
  Alcotest.(check (float 0.)) "max" 0. (Sketch.max_value t)

let test_zero_bucket () =
  let t = of_list [ 0.; -3.; 0.; 5. ] in
  Alcotest.(check int) "all counted" 4 (Sketch.count t);
  Alcotest.(check (float 0.)) "p50 is exact zero" 0. (Sketch.quantile t 0.5);
  Alcotest.(check bool) "p100 near 5" true
    (Float.abs (Sketch.quantile t 1. -. 5.) <= 0.05)

let test_sum_order_independent () =
  let xs = List.init 100 (fun i -> Float.of_int (i + 1) /. 7.) in
  let fwd = of_list xs and rev = of_list (List.rev xs) in
  Alcotest.check encode_testable "same bytes" (Sketch.encode fwd)
    (Sketch.encode rev);
  Alcotest.(check bool) "sum near exact" true
    (Float.abs (Sketch.sum fwd -. List.fold_left ( +. ) 0. xs) < 1e-3)

let test_alpha_mismatch () =
  let a = Sketch.create ~alpha:0.01 () and b = Sketch.create ~alpha:0.02 () in
  Alcotest.check_raises "merge rejects alpha mismatch"
    (Invalid_argument "Sketch.merge_into: alpha mismatch") (fun () ->
      ignore (Sketch.merge a b))

(* The registry face: series registration is idempotent, observation is
   gated by Metrics.enabled, and render emits a Prometheus summary. *)
let test_series_render () =
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled was)
    (fun () ->
      let s = Sketch.series ~help:"Test sketch." "ri_test_sketch_series" in
      let s' = Sketch.series "ri_test_sketch_series" in
      List.iter (fun x -> Sketch.observe s (float_of_int x)) [ 1; 2; 3; 4; 5 ];
      Alcotest.(check int) "registration idempotent" 5
        (Sketch.count (Sketch.snapshot s'));
      let text = Sketch.render () in
      Alcotest.(check bool) "summary type line" true
        (Astring.String.is_infix ~affix:"# TYPE ri_test_sketch_series summary"
           text);
      Alcotest.(check bool) "quantile sample" true
        (Astring.String.is_infix
           ~affix:"ri_test_sketch_series{quantile=\"0.5\"}" text);
      Alcotest.(check bool) "count sample" true
        (Astring.String.is_infix ~affix:"ri_test_sketch_series_count 5" text);
      Sketch.reset ();
      Alcotest.(check int) "reset zeroes" 0
        (Sketch.count (Sketch.snapshot s)))

let suite =
  ( "sketch",
    [
      prop_testcase merge_commutative;
      prop_testcase merge_associative;
      prop_testcase sharding_irrelevant;
      prop_testcase quantile_relative_error;
      Alcotest.test_case "empty sketch" `Quick test_empty;
      Alcotest.test_case "zero bucket exact" `Quick test_zero_bucket;
      Alcotest.test_case "sum order-independent" `Quick
        test_sum_order_independent;
      Alcotest.test_case "alpha mismatch rejected" `Quick test_alpha_mismatch;
      Alcotest.test_case "series registry render" `Quick test_series_render;
    ] )
