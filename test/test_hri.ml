(* Hop-count routing index, validated against Figure 8 of the paper.
   Topic order: databases, networks, theory, languages(/systems). *)

open Ri_content
open Ri_core

let s total by = Summary.of_counts ~total ~by_topic:by

let cost3 = Cost_model.make ~fanout:3.

(* Figure 8: W's hop-count RI with horizon 2. *)
let row_x = [| s 60 [| 13; 2; 5; 10 |]; s 20 [| 10; 10; 4; 17 |] |]
let row_y = [| s 30 [| 0; 3; 15; 12 |]; s 50 [| 31; 0; 15; 20 |] |]
let row_z = [| s 5 [| 2; 0; 3; 3 |]; s 70 [| 10; 40; 20; 50 |] |]

let make_w () =
  let t = Hri.create ~horizon:2 ~cost:cost3 ~width:4 ~local:(Summary.zero ~topics:4) () in
  Hri.set_row t ~peer:1 row_x;
  Hri.set_row t ~peer:2 row_y;
  Hri.set_row t ~peer:3 row_z;
  t

let test_validation () =
  Alcotest.check_raises "horizon"
    (Invalid_argument "Hri.create: horizon must be positive") (fun () ->
      ignore (Hri.create ~horizon:0 ~cost:cost3 ~width:4 ~local:(Summary.zero ~topics:4) ()));
  let t = make_w () in
  Alcotest.check_raises "row length"
    (Invalid_argument "Hri.set_row: row length must equal the horizon")
    (fun () -> Hri.set_row t ~peer:4 [| Summary.zero ~topics:4 |])

let test_accessors () =
  let t = make_w () in
  Alcotest.(check int) "horizon" 2 (Hri.horizon t);
  Alcotest.(check int) "width" 4 (Hri.width t);
  Alcotest.(check (list int)) "peers" [ 1; 2; 3 ] (Hri.peers t);
  Hri.remove_row t ~peer:2;
  Alcotest.(check (list int)) "after removal" [ 1; 3 ] (Hri.peers t)

let test_figure8_goodness () =
  (* "the goodness of X for a query about DB documents would be
     13 + 10/3 = 16.33 and for Y would be 0 + 31/3 = 10.33, so we would
     prefer X over Y" (Section 6.1). *)
  let t = make_w () in
  Alcotest.(check (float 0.01)) "X" 16.33 (Hri.goodness t ~peer:1 ~query:[ 0 ]);
  Alcotest.(check (float 0.01)) "Y" 10.33 (Hri.goodness t ~peer:2 ~query:[ 0 ]);
  Alcotest.(check bool) "prefer X" true
    (Hri.goodness t ~peer:1 ~query:[ 0 ] > Hri.goodness t ~peer:2 ~query:[ 0 ]);
  Alcotest.(check (float 1e-9)) "unknown peer" 0. (Hri.goodness t ~peer:9 ~query:[ 0 ])

let test_export_shifts_right () =
  (* "it shifts the columns to the right ... entries in the last column
     are discarded and the summary of the local index is placed as the
     first column". *)
  let local = s 7 [| 1; 2; 3; 1 |] in
  let t = Hri.create ~horizon:2 ~cost:cost3 ~width:4 ~local () in
  Hri.set_row t ~peer:1 row_x;
  Hri.set_row t ~peer:2 row_y;
  let e = Hri.export t ~exclude:None in
  Alcotest.(check int) "export length = horizon" 2 (Array.length e);
  Alcotest.(check bool) "slot 0 = local" true (Summary.approx_equal e.(0) local);
  (* Slot 1 = sum of the rows' hop-1 entries; the hop-2 entries (20, 50
     docs) fall off the horizon. *)
  Alcotest.(check (float 1e-9)) "slot 1 total" 90. e.(1).Summary.total;
  Alcotest.(check (float 1e-9)) "slot 1 db" 13. (Summary.get e.(1) 0)

let test_export_excludes_target () =
  let t = make_w () in
  let to_x = Hri.export t ~exclude:(Some 1) in
  (* Only Y and Z contribute: hop-1 totals 30 + 5. *)
  Alcotest.(check (float 1e-9)) "slot 1 excludes X" 35. to_x.(1).Summary.total

let test_export_all_pointwise () =
  let t = make_w () in
  List.iter
    (fun (peer, batch) ->
      let single = Hri.export t ~exclude:(Some peer) in
      Array.iteri
        (fun h sb ->
          Alcotest.(check bool)
            (Printf.sprintf "peer %d hop %d" peer h)
            true
            (Summary.approx_equal ~eps:1e-6 sb single.(h)))
        batch)
    (Hri.export_all t)

let test_no_information_beyond_horizon () =
  (* Chain the export along a - b - c - d: from d, node a's documents
     are three hops away, beyond the horizon of 2, so they vanish. *)
  let local = s 100 [| 100; 0; 0; 0 |] in
  let a = Hri.create ~horizon:2 ~cost:cost3 ~width:4 ~local () in
  let b = Hri.create ~horizon:2 ~cost:cost3 ~width:4 ~local:(Summary.zero ~topics:4) () in
  Hri.set_row b ~peer:0 (Hri.export a ~exclude:None);
  (* From c, a sits exactly at the horizon: still visible. *)
  let c = Hri.create ~horizon:2 ~cost:cost3 ~width:4 ~local:(Summary.zero ~topics:4) () in
  Hri.set_row c ~peer:1 (Hri.export b ~exclude:None);
  Alcotest.(check (float 1e-6)) "visible at the horizon" (100. /. 3.)
    (Hri.goodness c ~peer:1 ~query:[ 0 ]);
  let d = Hri.create ~horizon:2 ~cost:cost3 ~width:4 ~local:(Summary.zero ~topics:4) () in
  Hri.set_row d ~peer:2 (Hri.export c ~exclude:None);
  Alcotest.(check (float 1e-9)) "goodness saw nothing" 0.
    (Hri.goodness d ~peer:2 ~query:[ 0 ]);
  Alcotest.(check (float 1e-9)) "nothing beyond hop 0" 0.
    (Hri.total_beyond_hop d ~peer:2 ~hop:0)

let test_total_beyond_hop () =
  let t = make_w () in
  Alcotest.(check (float 1e-9)) "X beyond hop 1" 20.
    (Hri.total_beyond_hop t ~peer:1 ~hop:1);
  Alcotest.(check (float 1e-9)) "X beyond hop 2" 0.
    (Hri.total_beyond_hop t ~peer:1 ~hop:2)

let suite =
  ( "hri",
    [
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "accessors" `Quick test_accessors;
      Alcotest.test_case "figure 8 goodness (16.33/10.33)" `Quick test_figure8_goodness;
      Alcotest.test_case "export shifts right" `Quick test_export_shifts_right;
      Alcotest.test_case "export excludes target" `Quick test_export_excludes_target;
      Alcotest.test_case "export_all pointwise" `Quick test_export_all_pointwise;
      Alcotest.test_case "horizon forgets" `Quick test_no_information_beyond_horizon;
      Alcotest.test_case "total beyond hop" `Quick test_total_beyond_hop;
    ] )
