(* Fault plane: plan determinism, the staleness ledger, wave-level drop
   and delay behavior, query timeouts/retries/budget, and the strict
   no-op guarantee of an inert spec. *)

open Ri_content
open Ri_core
open Ri_topology
open Ri_p2p

let heavy =
  {
    Fault.none with
    Fault.update_loss = 0.4;
    update_delay = 0.2;
    delay_waves = 2;
    crash = 0.2;
    link_flap = 0.05;
    drift = 0.5;
    stale_after = Some 1;
    retries = 2;
    backoff = 1;
  }

let test_spec_validation () =
  Alcotest.(check bool) "none validates" true
    (Fault.validate Fault.none = Ok ());
  Alcotest.(check bool) "heavy validates" true (Fault.validate heavy = Ok ());
  Alcotest.(check bool) "loss > 1 rejected" true
    (Fault.validate { Fault.none with Fault.update_loss = 1.5 } <> Ok ());
  Alcotest.(check bool) "all nodes crashed rejected" true
    (Fault.validate { Fault.none with Fault.crash = 1.0 } <> Ok ());
  Alcotest.(check bool) "partition > 1 rejected" true
    (Fault.validate { Fault.none with Fault.partition = 1.5 } <> Ok ());
  Alcotest.(check bool) "full partition rejected" true
    (Fault.validate { Fault.none with Fault.partition = 1.0 } <> Ok ());
  Alcotest.(check bool) "negative heal_after rejected" true
    (Fault.validate { Fault.none with Fault.heal_after = Some (-1) } <> Ok ());
  Alcotest.(check bool) "none is inactive" false (Fault.active Fault.none);
  Alcotest.(check bool) "budget alone stays inactive" false
    (Fault.active { Fault.none with Fault.query_budget = Some 10 });
  Alcotest.(check bool) "partition alone is active" true
    (Fault.active { Fault.none with Fault.partition = 0.3 });
  Alcotest.(check bool) "heavy is active" true (Fault.active heavy)

let test_plan_determinism () =
  (* Two plans from the same (seed, trial) make identical draws; a
     different trial diverges. *)
  let mk () = Fault.make heavy ~seed:7 ~trial:3 ~nodes:200 ~protect:[ 0 ] in
  let a = mk () and b = mk () in
  Alcotest.(check int) "same kill count" (Fault.crashed a) (Fault.crashed b);
  for v = 0 to 199 do
    Alcotest.(check bool)
      (Printf.sprintf "same dead set at %d" v)
      (Fault.is_dead a v) (Fault.is_dead b v)
  done;
  let draws p =
    List.init 64 (fun _ -> (Fault.drop_update p, Fault.delay_update p, Fault.flap p))
  in
  Alcotest.(check bool) "same draw sequence" true (draws a = draws b);
  let c = Fault.make heavy ~seed:7 ~trial:4 ~nodes:200 ~protect:[ 0 ] in
  Alcotest.(check bool) "different trial diverges" true
    (draws a <> draws c
    || List.exists (fun v -> Fault.is_dead a v <> Fault.is_dead c v)
         (List.init 200 Fun.id))

let test_protected_nodes_survive () =
  let plan =
    Fault.make
      { Fault.none with Fault.crash = 0.5 }
      ~seed:11 ~trial:0 ~nodes:100 ~protect:[ 17; 42 ]
  in
  Alcotest.(check bool) "protected nodes alive" false
    (Fault.is_dead plan 17 || Fault.is_dead plan 42);
  Alcotest.(check bool) "some nodes died" true (Fault.crashed plan > 0)

let test_staleness_ledger () =
  let plan = Fault.make heavy ~seed:1 ~trial:0 ~nodes:10 ~protect:[ 0 ] in
  Alcotest.(check int) "no gap initially" 0 (Fault.missed plan ~at:1 ~peer:2);
  Fault.note_missed plan ~at:1 ~peer:2;
  Fault.note_missed plan ~at:1 ~peer:2;
  Alcotest.(check int) "two recorded misses" 2 (Fault.missed plan ~at:1 ~peer:2);
  Alcotest.(check bool) "beyond threshold 1 is stale" true
    (Fault.stale plan ~at:1 ~peer:2);
  (* The open gap taints exports toward everyone except the gapped row
     itself (that row is excluded from the export toward its peer). *)
  Alcotest.(check bool) "export toward third party tainted" true
    (Fault.tainted plan ~at:1 ~toward:3);
  Alcotest.(check bool) "export toward the gapped peer untainted" false
    (Fault.tainted plan ~at:1 ~toward:2);
  Fault.clear_missed plan ~at:1 ~peer:2;
  Alcotest.(check int) "healed" 0 (Fault.missed plan ~at:1 ~peer:2);
  Alcotest.(check bool) "no taint after healing" false
    (Fault.tainted plan ~at:1 ~toward:3)

let test_backoff_full_jitter () =
  (* Ticks are uniform in [0, backoff * 2^attempt]: bounded above by the
     doubling envelope, deterministic for identical plans (dedicated
     retry stream), and free when the base backoff is zero. *)
  let mk () = Fault.make heavy ~seed:1 ~trial:0 ~nodes:10 ~protect:[ 0 ] in
  let a = mk () and b = mk () in
  let draw plan = List.init 32 (fun k -> Fault.backoff_ticks plan ~attempt:(k mod 8)) in
  let ticks = draw a in
  Alcotest.(check (list int)) "identical plans draw identical jitter" ticks (draw b);
  List.iteri
    (fun k t ->
      let bound = heavy.Fault.backoff * (1 lsl (k mod 8)) in
      Alcotest.(check bool)
        (Printf.sprintf "tick %d within [0, %d]" k bound)
        true
        (t >= 0 && t <= bound))
    ticks;
  Alcotest.(check bool) "jitter actually varies" true
    (List.exists (fun t -> t <> List.hd ticks) ticks);
  let zero =
    Fault.make { heavy with Fault.backoff = 0 } ~seed:1 ~trial:0 ~nodes:10
      ~protect:[ 0 ]
  in
  Alcotest.(check (list int)) "zero base backoff means zero ticks"
    [ 0; 0; 0; 0 ]
    (List.init 4 (fun k -> Fault.backoff_ticks zero ~attempt:k))

(* A 7-node path: 0-1-2-...-6, one topic, one document per node. *)
let line_net n =
  let graph = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let content =
    {
      Network.summary = (fun _ -> Summary.of_counts ~total:1 ~by_topic:[| 1 |]);
      count_matching = (fun _ _ -> 1);
    }
  in
  Network.create ~graph ~content ~scheme:Scheme.Cri_kind ()

let rows_snapshot net =
  List.init (Network.size net) (fun v ->
      List.map
        (fun p -> (p, Scheme.row (Network.ri net v) ~peer:p))
        (Scheme.peers (Network.ri net v)))

let test_total_loss_freezes_rows () =
  (* With every update message lost, a local change reaches nobody. *)
  let net = line_net 7 in
  let before = rows_snapshot net in
  let plan =
    Fault.make
      { Fault.none with Fault.update_loss = 1.0 }
      ~seed:3 ~trial:0 ~nodes:7 ~protect:[ 0 ]
  in
  let counters = Message.create () in
  Update.local_change ~plan net ~origin:3
    ~summary:(Summary.of_counts ~total:50 ~by_topic:[| 50 |])
    ~counters;
  Alcotest.(check bool) "rows unchanged everywhere" true
    (rows_snapshot net = before);
  Alcotest.(check bool) "messages were sent (and lost)" true
    (counters.Message.update_messages > 0);
  Alcotest.(check bool) "drops counted" true
    ((Fault.stats plan).Fault.update_drops > 0);
  (* Both receivers recorded the gap. *)
  Alcotest.(check bool) "gaps recorded at the receivers" true
    (Fault.missed plan ~at:2 ~peer:3 > 0 && Fault.missed plan ~at:4 ~peer:3 > 0)

let test_delay_only_same_final_state () =
  (* Delays reorder the wave but every message eventually lands: the
     final rows match the fault-free run. *)
  let clean = line_net 7 in
  Update.local_change clean ~origin:3
    ~summary:(Summary.of_counts ~total:50 ~by_topic:[| 50 |])
    ~counters:(Message.create ());
  let delayed = line_net 7 in
  let plan =
    Fault.make
      { Fault.none with Fault.update_delay = 1.0; delay_waves = 3 }
      ~seed:3 ~trial:0 ~nodes:7 ~protect:[ 0 ]
  in
  Update.local_change ~plan delayed ~origin:3
    ~summary:(Summary.of_counts ~total:50 ~by_topic:[| 50 |])
    ~counters:(Message.create ());
  Alcotest.(check bool) "delays happened" true
    ((Fault.stats plan).Fault.update_delays > 0);
  Alcotest.(check bool) "same final rows as fault-free" true
    (rows_snapshot delayed = rows_snapshot clean)

let test_inert_plan_is_noop () =
  (* An all-zero spec behind a plan must leave the wave bit-for-bit
     identical to running without one. *)
  let with_plan = line_net 7 in
  let plan = Fault.make Fault.none ~seed:3 ~trial:0 ~nodes:7 ~protect:[ 0 ] in
  let c1 = Message.create () in
  Update.local_change ~plan with_plan ~origin:3
    ~summary:(Summary.of_counts ~total:50 ~by_topic:[| 50 |])
    ~counters:c1;
  let without = line_net 7 in
  let c2 = Message.create () in
  Update.local_change without ~origin:3
    ~summary:(Summary.of_counts ~total:50 ~by_topic:[| 50 |])
    ~counters:c2;
  Alcotest.(check bool) "identical rows" true
    (rows_snapshot with_plan = rows_snapshot without);
  Alcotest.(check int) "identical message count" c2.Message.update_messages
    c1.Message.update_messages

let test_query_timeout_retry_detect () =
  (* Node 1 sits between the origin 0 and the rest of the line, then
     crash-stops.  The query times out retries+1 times, gives up,
     removes the row and records the death. *)
  let net = line_net 7 in
  let plan = Fault.make heavy ~seed:5 ~trial:0 ~nodes:7 ~protect:[ 0 ] in
  Churn.crash_stop net 1 ~plan;
  Alcotest.(check bool) "node 1 dead" true (Fault.is_dead plan 1);
  let q = Workload.query ~topics:[ 0 ] ~stop:5 in
  let o = Query.run ~plan net ~origin:0 ~query:q ~forwarding:Query.Ri_guided in
  let st = Fault.stats plan in
  Alcotest.(check int) "one timeout per attempt" (Fault.retries plan + 1)
    st.Fault.timeouts;
  Alcotest.(check int) "retries exhausted" (Fault.retries plan)
    st.Fault.retries_used;
  Alcotest.(check bool) "death learned at the origin" true
    (Fault.knows_dead plan ~at:0 ~dead:1);
  Alcotest.(check bool) "row for the corpse removed" true
    (Scheme.row (Network.ri net 0) ~peer:1 = None);
  (* The whole network sits behind the corpse: only local results. *)
  Alcotest.(check int) "only local results" 1 o.Query.found

let test_query_budget_stops () =
  let net = line_net 7 in
  let plan =
    Fault.make
      { Fault.none with Fault.query_budget = Some 2; link_flap = 0.0 }
      ~seed:5 ~trial:0 ~nodes:7 ~protect:[ 0 ]
  in
  let q = Workload.query ~topics:[ 0 ] ~stop:7 in
  let o = Query.run ~plan net ~origin:0 ~query:q ~forwarding:Query.Ri_guided in
  Alcotest.(check bool) "budget capped the walk" true
    (o.Query.counters.Message.query_forwards <= 2);
  Alcotest.(check bool) "stop recorded" true
    ((Fault.stats plan).Fault.budget_stops > 0)

let suite =
  ( "fault",
    [
      Alcotest.test_case "spec validation" `Quick test_spec_validation;
      Alcotest.test_case "plan determinism" `Quick test_plan_determinism;
      Alcotest.test_case "protected nodes survive" `Quick
        test_protected_nodes_survive;
      Alcotest.test_case "staleness ledger" `Quick test_staleness_ledger;
      Alcotest.test_case "full-jitter backoff" `Quick test_backoff_full_jitter;
      Alcotest.test_case "total loss freezes rows" `Quick
        test_total_loss_freezes_rows;
      Alcotest.test_case "delay-only reaches same state" `Quick
        test_delay_only_same_final_state;
      Alcotest.test_case "inert plan is a no-op" `Quick test_inert_plan_is_noop;
      Alcotest.test_case "timeout, retry, detect" `Quick
        test_query_timeout_retry_detect;
      Alcotest.test_case "query budget stops" `Quick test_query_budget_stops;
    ] )
